"""Shared helpers for the serving-service test sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lm.tokenizer import EncodedPair
from repro.serve.load import MAX_LENGTH, build_tenant_stack, make_script


def make_pairs(seed: int, count: int, max_length: int = 22) -> list[EncodedPair]:
    """Deterministic synthetic encoded pairs (token ids clear of specials)."""
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        length = int(rng.integers(6, max_length))
        input_ids = np.zeros(MAX_LENGTH, dtype=np.int64)
        input_ids[:length] = rng.integers(5, 90, size=length)
        attention = np.zeros(MAX_LENGTH, dtype=np.int64)
        attention[:length] = 1
        segment = np.zeros(MAX_LENGTH, dtype=np.int64)
        segment[length // 2 : length] = 1
        pairs.append(
            EncodedPair(
                input_ids=input_ids, segment_ids=segment, attention_mask=attention
            )
        )
    return pairs


@pytest.fixture()
def tenant_stack():
    """One tiny (model, classifier, special_ids) stack for single-tenant tests."""
    script = make_script(seed=5, n_tenants=1, n_sessions=1, n_requests=1)
    return build_tenant_stack(script, 0)
