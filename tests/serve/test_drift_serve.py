"""Schema drift against the serving plane.

`ServeService.apply_drift` mutates a live session's matcher under the
session lock while the service keeps scoring: in-flight requests carry
their own encoded pairs and pinned model version, so drift landing
between submit and completion must not change a single score.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import (
    GroundTruthOracle,
    LearnedSchemaMatcher,
    LsmConfig,
    MatchingSession,
)
from repro.featurizers.bert import BertFeaturizerConfig
from repro.schema import AttributeRef, RenameColumn, SchemaDelta
from repro.serve import AdmissionError, ServeConfig, ServeService

from .conftest import make_pairs


def run(coro):
    return asyncio.run(coro)


def small_config(**overrides) -> ServeConfig:
    defaults = dict(max_sessions=4, max_inflight_per_session=4, max_wait_s=0.005)
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture()
def matching_session(source_schema, target_schema, tiny_artifacts, ground_truth):
    config = LsmConfig(
        bert=BertFeaturizerConfig(
            max_length=24, pretrain_epochs=1, update_epochs=1, batch_size=16, seed=0
        ),
        update_bert_every=10**9,
        seed=0,
    )
    matcher = LearnedSchemaMatcher(
        source_schema, target_schema, config=config, artifacts=tiny_artifacts
    )
    oracle = GroundTruthOracle(ground_truth, target_schema)
    with MatchingSession(matcher, oracle) as session:
        yield session


RENAME_DELTA = SchemaDelta(
    (RenameColumn(AttributeRef("Orders", "qty"), "quantity_sold"),)
)


class TestApplyDrift:
    def test_drift_on_live_session(self, tenant_stack, matching_session):
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                matching_session.predict()
                report = service.apply_drift(handle, matching_session, RENAME_DELTA)
                assert service.stats.drifts_applied == 1
                assert "drifts_applied" in service.stats.as_dict()
                assert report.store.labels_dropped == 0
                # The session keeps serving against the evolved schema.
                predictions = matching_session.predict()
                assert (
                    AttributeRef("Orders", "quantity_sold") in predictions.suggestions
                )

        run(scenario())

    def test_drift_requires_open_session(self, tenant_stack, matching_session):
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                service.close_session(handle)
                with pytest.raises(AdmissionError, match="not open"):
                    service.apply_drift(handle, matching_session, RENAME_DELTA)
                assert service.stats.drifts_applied == 0

        run(scenario())

    def test_inflight_requests_pinned_across_drift(
        self, tenant_stack, matching_session
    ):
        """Requests submitted before the drift score identically to a run
        with no drift at all: the serving plane's pairs are pinned."""
        pairs = [make_pairs(seed, 3) for seed in range(4)]

        async def scenario(drift: bool) -> list[np.ndarray]:
            # Long max_wait keeps the requests queued until flush, so the
            # drift (when enabled) lands while they are in flight.
            async with ServeService(small_config(max_wait_s=5.0)) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                futures = [service.submit_nowait(handle, batch) for batch in pairs]
                if drift:
                    service.apply_drift(handle, matching_session, RENAME_DELTA)
                await service.flush()
                return list(await asyncio.gather(*futures))

        drifted = run(scenario(drift=True))
        control = run(scenario(drift=False))
        for got, expected in zip(drifted, control):
            np.testing.assert_array_equal(got, expected)
