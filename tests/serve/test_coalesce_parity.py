"""Cross-session coalescing parity: coalesced scores == sequential scores.

The whole point of the coalescing scheduler is that it changes *when and
with whom* a request's pairs are scored, never *what* they score to.  These
tests replay the same deterministic load script twice -- once per-request
sequentially, once through the full async service -- and require the scores
to agree to 1e-8 across mixed tenants, interleaved sessions and mid-run
hot-swaps, for both scoring backends and worker counts {1, 4}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import EngineConfig
from repro.serve import (
    EngineBackend,
    ServeConfig,
    make_script,
    replay_coalesced,
    replay_sequential,
)

ATOL = 1e-8

#: Deterministic-composition config: every request is submitted before any
#: flush trigger fires, so each model version drains as one full-pool FIFO
#: batch and the comparison is reproducible run to run.
PARITY_CONFIG = ServeConfig(
    max_sessions=64,
    max_inflight_per_session=32,
    max_wait_s=5.0,
    target_batch_pairs=100_000,
    max_batch_pairs=100_000,
)


def assert_parity(script, coalesced, sequential):
    assert coalesced.scores.keys() == sequential.scores.keys()
    assert len(coalesced.scores) == script.n_requests
    worst = max(
        float(np.max(np.abs(coalesced.scores[key] - sequential.scores[key])))
        for key in sequential.scores
    )
    assert worst <= ATOL, f"coalesced-vs-sequential deviation {worst:.3e}"


class TestInProcessParity:
    def test_mixed_tenants_with_hot_swaps(self):
        script = make_script(
            seed=7,
            n_tenants=2,
            n_sessions=8,
            n_requests=64,
            min_pairs=1,
            max_pairs=2,
            max_length=22,
            swap_every=16,
        )
        assert script.n_swaps == 4
        sequential = replay_sequential(script)
        coalesced = replay_coalesced(script, config=PARITY_CONFIG)
        assert_parity(script, coalesced, sequential)
        # The replay must actually have coalesced across sessions.
        assert coalesced.metrics["serve.cross_session_batches"] >= 1
        assert coalesced.metrics["serve.coalesce_ratio"] > 1.0

    def test_single_tenant_no_swaps(self):
        script = make_script(
            seed=3,
            n_tenants=1,
            n_sessions=4,
            n_requests=32,
            min_pairs=1,
            max_pairs=3,
            max_length=22,
        )
        sequential = replay_sequential(script)
        coalesced = replay_coalesced(script, config=PARITY_CONFIG)
        assert_parity(script, coalesced, sequential)

    def test_parity_with_small_batches_and_deadline_flushes(self):
        # Tight triggers: many small batches, formed by live timing.  The
        # composition varies run to run; the scores must not.
        script = make_script(
            seed=11,
            n_tenants=2,
            n_sessions=6,
            n_requests=48,
            min_pairs=1,
            max_pairs=2,
            max_length=22,
            swap_every=12,
        )
        config = ServeConfig(
            max_sessions=64,
            max_inflight_per_session=16,
            max_wait_s=0.001,
            target_batch_pairs=8,
            max_batch_pairs=32,
        )
        sequential = replay_sequential(script)
        coalesced = replay_coalesced(script, config=config)
        assert_parity(script, coalesced, sequential)

    def test_no_shm_fallback_parity(self):
        script = make_script(
            seed=7,
            n_tenants=2,
            n_sessions=8,
            n_requests=64,
            min_pairs=1,
            max_pairs=2,
            max_length=22,
            swap_every=16,
        )
        config = ServeConfig(
            max_sessions=64,
            max_inflight_per_session=32,
            max_wait_s=5.0,
            target_batch_pairs=100_000,
            max_batch_pairs=100_000,
            use_shm=False,
        )
        sequential = replay_sequential(script)
        coalesced = replay_coalesced(script, config=config)
        assert_parity(script, coalesced, sequential)


@pytest.mark.slow
class TestEngineBackendParity:
    """The EngineBackend inherits the full serving ladder (worker pools,
    shm hot-swap).  Parity must hold across worker counts and swaps."""

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_engine_backend_parity_across_workers(self, n_workers):
        script = make_script(
            seed=7,
            n_tenants=2,
            n_sessions=8,
            n_requests=64,
            min_pairs=1,
            max_pairs=2,
            max_length=22,
            swap_every=16,
        )
        backend = EngineBackend(
            EngineConfig(
                n_workers=n_workers,
                min_pairs_for_workers=1,
                microbatch_size=16,
            )
        )
        sequential = replay_sequential(script)
        coalesced = replay_coalesced(script, config=PARITY_CONFIG, backend=backend)
        assert_parity(script, coalesced, sequential)

    def test_engine_backend_survives_hot_swaps(self):
        from repro.engine import live_segment_names

        script = make_script(
            seed=5,
            n_tenants=2,
            n_sessions=4,
            n_requests=40,
            min_pairs=1,
            max_pairs=2,
            max_length=22,
            swap_every=10,
        )
        backend = EngineBackend(
            EngineConfig(n_workers=2, min_pairs_for_workers=1, microbatch_size=16)
        )
        sequential = replay_sequential(script)
        coalesced = replay_coalesced(script, config=PARITY_CONFIG, backend=backend)
        assert_parity(script, coalesced, sequential)
        # Engines and arenas were torn down by service.stop().
        assert not live_segment_names()
