"""Concurrency stress: no cross-session bleed, async or threaded.

Two layers of isolation are on trial here:

* **service-level** -- many asyncio tasks drive independent sessions of one
  :class:`ServeService`; the coalescer freely mixes their pairs into shared
  batches, but every session must get back exactly the scores its own
  tenant's weights produce for its own pairs;
* **process-level** -- several OS threads each run a full traced
  ``MatchingSession``; the ambient tracer is context-local (a ContextVar,
  isolating threads *and* asyncio tasks), so every NDJSON trace must
  validate and carry exactly its *own* session's iteration records (a
  shared-global tracer would interleave spans across files).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import asdict

import numpy as np
import pytest

from repro import obs
from repro.core import (
    GroundTruthOracle,
    LearnedSchemaMatcher,
    LsmConfig,
    MatchingSession,
)
from repro.engine.batching import plan_microbatches
from repro.featurizers.bert import BertFeaturizerConfig, score_encoded_batch
from repro.serve import ServeConfig, ServeService, build_tenant_stack, make_script

from .conftest import make_pairs

ATOL = 1e-8


def direct_scores(stack, pairs) -> np.ndarray:
    """Reference scores for ``pairs`` under one tenant stack, no service."""
    model, classifier, special_ids = stack
    out = np.empty(len(pairs), dtype=np.float64)
    for microbatch in plan_microbatches(pairs, microbatch_size=64):
        scores = score_encoded_batch(model, classifier, special_ids, microbatch.batch)
        for position, score in zip(microbatch.indices, scores):
            out[position] = float(score)
    return out


class TestConcurrentServiceSessions:
    N_SESSIONS = 8
    N_REQUESTS = 6  # per session

    def _stacks(self):
        script = make_script(seed=13, n_tenants=2, n_sessions=1, n_requests=1)
        return {tenant: build_tenant_stack(script, tenant) for tenant in (0, 1)}

    def _session_pairs(self, session: int) -> list:
        return [
            make_pairs(seed=1000 * session + request, count=2 + request % 3)
            for request in range(self.N_REQUESTS)
        ]

    def _run_concurrent(self, config: ServeConfig, *, flush: bool):
        stacks = self._stacks()

        async def scenario():
            async with ServeService(config) as service:
                for tenant, stack in stacks.items():
                    service.register_tenant(f"t{tenant}", *stack)

                async def one_session(session: int):
                    handle = service.open_session(f"t{session % 2}")
                    futures = []
                    for pairs in self._session_pairs(session):
                        futures.append(service.submit_nowait(handle, pairs))
                        await asyncio.sleep(0)
                    if flush:
                        await service.flush()
                    scores = list(await asyncio.gather(*futures))
                    service.close_session(handle)
                    return session, scores

                results = await asyncio.gather(
                    *(one_session(s) for s in range(self.N_SESSIONS))
                )
                return dict(results), service.stats

        return asyncio.run(scenario()), stacks

    def _assert_no_bleed(self, results, stacks):
        for session in range(self.N_SESSIONS):
            stack = stacks[session % 2]
            for request, pairs in enumerate(self._session_pairs(session)):
                expected = direct_scores(stack, pairs)
                got = results[session][request]
                assert got.shape == expected.shape
                deviation = float(np.max(np.abs(got - expected)))
                assert deviation <= ATOL, (
                    f"session {session} request {request}: "
                    f"scores bled across sessions (deviation {deviation:.3e})"
                )

    def test_no_cross_session_score_bleed_when_coalesced(self):
        # Deterministic composition: everything coalesces, then one flush.
        config = ServeConfig(
            max_sessions=16,
            max_inflight_per_session=self.N_REQUESTS,
            max_wait_s=5.0,
            target_batch_pairs=100_000,
            max_batch_pairs=100_000,
        )
        (results, stats), stacks = self._run_concurrent(config, flush=True)
        self._assert_no_bleed(results, stacks)
        # The isolation must have been exercised, not vacuous: pairs from
        # different sessions really did share batches.
        assert stats.cross_session_batches >= 1
        assert stats.coalesce_ratio() > 1.0
        assert stats.requests_completed == self.N_SESSIONS * self.N_REQUESTS

    def test_no_bleed_under_live_deadline_flushes(self):
        # Tight triggers: batch composition is timing-dependent and varies
        # run to run; per-session scores must not.
        config = ServeConfig(
            max_sessions=16,
            max_inflight_per_session=self.N_REQUESTS,
            max_wait_s=0.001,
            target_batch_pairs=8,
            max_batch_pairs=64,
        )
        (results, stats), stacks = self._run_concurrent(config, flush=False)
        self._assert_no_bleed(results, stacks)
        assert stats.requests_completed == self.N_SESSIONS * self.N_REQUESTS
        assert stats.queue_depth_peak >= 1


class TestThreadedTracedSessions:
    """Each thread runs a full traced matcher session; traces must not mix."""

    N_THREADS = 3

    def test_threaded_sessions_produce_isolated_valid_traces(
        self, tmp_path, source_schema, target_schema, tiny_artifacts, ground_truth
    ):
        sessions: dict[int, MatchingSession] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(self.N_THREADS)

        def run_one(thread: int) -> None:
            try:
                config = LsmConfig(
                    trace_path=str(tmp_path / f"thread{thread}.ndjson"),
                    bert=BertFeaturizerConfig(
                        max_length=24,
                        pretrain_epochs=1,
                        update_epochs=1,
                        batch_size=16,
                        seed=thread,
                    ),
                    seed=thread,
                )
                matcher = LearnedSchemaMatcher(
                    source_schema,
                    target_schema,
                    config=config,
                    artifacts=tiny_artifacts,
                )
                oracle = GroundTruthOracle(ground_truth, target_schema)
                barrier.wait(timeout=60)  # maximise overlap between threads
                try:
                    sessions[thread] = MatchingSession(matcher, oracle).run()
                finally:
                    matcher.close()
            except BaseException as error:  # surfaced in the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=run_one, args=(thread,), name=f"lsm-{thread}")
            for thread in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert not errors, errors
        assert len(sessions) == self.N_THREADS

        for thread, session in sessions.items():
            assert session.completed
            assert session.result.accuracy_against(ground_truth) == pytest.approx(1.0)
            trace_path = tmp_path / f"thread{thread}.ndjson"
            # The trace validates against the NDJSON schema in isolation...
            records = obs.load_trace(trace_path)
            kinds = [record["kind"] for record in records]
            assert kinds[0] == "meta"
            assert kinds[-1] == "summary"
            # ...and carries exactly THIS thread's session, span for span.
            summary = obs.summarize_trace_file(trace_path)
            assert len(summary.iterations) == len(session.records)
            for row, record in zip(summary.iterations, session.records):
                expected = asdict(record)
                assert {key: row[key] for key in expected} == expected
            assert summary.invariant_violations == 0
