"""Serving front-end behaviour: admission, deadlines, hot-swap, lifecycle."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.engine.batching import plan_microbatches
from repro.featurizers.bert import score_encoded_batch
from repro.serve import (
    AdmissionController,
    AdmissionError,
    ModelResidency,
    ResidencyError,
    ServeConfig,
    ServeService,
    apply_swap,
)

from .conftest import make_pairs


def run(coro):
    return asyncio.run(coro)


def small_config(**overrides) -> ServeConfig:
    defaults = dict(max_sessions=4, max_inflight_per_session=2, max_wait_s=0.005)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def direct_scores(resident, pairs) -> np.ndarray:
    """Score pairs straight against a resident version (reference path)."""
    out = np.empty(len(pairs))
    for mb in plan_microbatches(pairs, microbatch_size=64, bucket_granularity=8):
        scores = score_encoded_batch(
            resident.model, resident.classifier, resident.special_ids, mb.batch
        )
        for position, score in zip(mb.indices, scores):
            out[position] = float(score)
    return out


class TestAdmission:
    def test_session_limit_enforced(self, tenant_stack):
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                handles = [service.open_session("t0") for _ in range(4)]
                with pytest.raises(AdmissionError, match="session limit"):
                    service.open_session("t0")
                # Closing one session frees the slot.
                service.close_session(handles[0])
                service.open_session("t0")
                assert service.stats.sessions_rejected == 1
                assert service.stats.sessions_opened == 5

        run(scenario())

    def test_duplicate_session_id_rejected(self, tenant_stack):
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                service.open_session("t0", session_id="dup")
                with pytest.raises(AdmissionError, match="already open"):
                    service.open_session("t0", session_id="dup")

        run(scenario())

    def test_unknown_tenant_rejected_without_consuming_slot(self, tenant_stack):
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                with pytest.raises(ResidencyError, match="unknown tenant"):
                    service.open_session("nope")
                assert service.admission.active_sessions == 0

        run(scenario())

    def test_inflight_bound_enforced(self, tenant_stack):
        async def scenario():
            # Long max_wait keeps requests queued while we over-submit.
            config = small_config(max_wait_s=5.0)
            async with ServeService(config) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                futures = [
                    service.submit_nowait(handle, make_pairs(i, 2)) for i in range(2)
                ]
                with pytest.raises(AdmissionError):
                    service.submit_nowait(handle, make_pairs(9, 2))
                assert service.stats.requests_rejected == 1
                await service.flush()
                await asyncio.gather(*futures)
                # Completion returns the in-flight slots.
                service.submit_nowait(handle, make_pairs(3, 1))
                await service.flush()

        run(scenario())

    def test_submit_requires_open_session(self, tenant_stack):
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                service.close_session(handle)
                with pytest.raises(AdmissionError, match="not open"):
                    service.submit_nowait(handle, make_pairs(0, 1))

        run(scenario())


class TestAdmissionController:
    def test_end_without_begin_raises(self):
        controller = AdmissionController(2, 2)
        controller.open_session("s")
        with pytest.raises(AdmissionError, match="end_request without begin"):
            controller.end_request("s")

    def test_close_session_is_idempotent(self):
        controller = AdmissionController(2, 2)
        controller.open_session("s")
        controller.close_session("s")
        controller.close_session("s")
        assert controller.active_sessions == 0

    def test_inflight_of_closed_session_still_completes(self):
        controller = AdmissionController(2, 2)
        controller.open_session("s")
        controller.begin_request("s")
        controller.close_session("s")
        controller.end_request("s")  # completing after close is fine
        assert controller.inflight("s") == 0

    def test_reopen_refused_while_ghost_inflight_drains(self):
        # Regression: reopening a just-closed session_id inherited the old
        # incarnation's draining in-flight count, spuriously rejecting the
        # new session's own first requests.
        controller = AdmissionController(2, 1)
        controller.open_session("s")
        controller.begin_request("s")
        controller.close_session("s")
        with pytest.raises(AdmissionError, match="draining"):
            controller.open_session("s")
        controller.end_request("s")  # the ghost request completes
        controller.open_session("s")  # now the id is reusable...
        controller.begin_request("s")  # ...starting from depth zero
        assert controller.inflight("s") == 1


class TestScoring:
    def test_lone_request_is_deadline_flushed_not_starved(self, tenant_stack):
        async def scenario():
            config = small_config(
                max_wait_s=0.01, target_batch_pairs=10_000, max_batch_pairs=10_000
            )
            async with ServeService(config) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                started = time.perf_counter()
                scores = await service.submit(handle, make_pairs(0, 2))
                elapsed = time.perf_counter() - started
                assert scores.shape == (2,)
                # Far below the 10k-pair size target, far above zero wait:
                # the deadline trigger must have fired.
                assert service.stats.deadline_flushes == 1
                assert elapsed < 5.0

        run(scenario())

    def test_scores_match_direct_scoring(self, tenant_stack):
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                pairs = make_pairs(4, 5)
                scores = await service.submit(handle, pairs)
                resident = service.residency.acquire(
                    service.residency.latest_key("t0")
                )
                expected = direct_scores(resident, pairs)
                service.residency.release(resident.key)
                np.testing.assert_allclose(scores, expected, atol=1e-8, rtol=0)

        run(scenario())

    def test_hot_swap_changes_scores_for_new_requests(self, tenant_stack):
        async def scenario():
            model, classifier, special_ids = tenant_stack
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", model, classifier, special_ids)
                handle = service.open_session("t0")
                pairs = make_pairs(7, 4)
                before = await service.submit(handle, pairs)
                apply_swap(model, classifier, swap_seed=99)
                service.publish("t0", model, classifier, special_ids)
                after = await service.submit(handle, pairs)
                assert not np.allclose(before, after, atol=1e-12)

        run(scenario())

    def test_inflight_request_pins_its_version_across_hot_swap(self, tenant_stack):
        async def scenario():
            model, classifier, special_ids = tenant_stack
            config = small_config(max_wait_s=5.0)  # keep the request queued
            async with ServeService(config) as service:
                v1 = service.register_tenant("t0", model, classifier, special_ids)
                handle = service.open_session("t0")
                pairs = make_pairs(11, 3)
                v1_resident = service.residency.acquire(v1)
                expected = direct_scores(v1_resident, pairs)
                service.residency.release(v1)

                future = service.submit_nowait(handle, pairs)
                # Hot-swap lands while the request is still queued ...
                apply_swap(model, classifier, swap_seed=123)
                service.publish("t0", model, classifier, special_ids)
                await service.flush()
                scores = await future
                # ... but the request is scored with the version it bound
                # at submit time.
                np.testing.assert_allclose(scores, expected, atol=1e-8, rtol=0)

        run(scenario())

    def test_empty_request_rejected(self, tenant_stack):
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                with pytest.raises(ValueError, match="at least one pair"):
                    service.submit_nowait(handle, [])
                # The failed submit must not leak an admission slot or a pin.
                assert service.admission.inflight(handle.session_id) == 0
                scores = await service.submit(handle, make_pairs(2, 1))
                assert scores.shape == (1,)

        run(scenario())

    def test_failing_backend_fails_futures_not_service(self, tenant_stack):
        class ExplodingBackend:
            def score(self, resident, plan):
                raise RuntimeError("boom")

            def close(self):
                pass

        async def scenario():
            service = ServeService(small_config(), backend=ExplodingBackend())
            async with service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                with pytest.raises(RuntimeError, match="batch execution failed"):
                    await service.submit(handle, make_pairs(0, 2))
                assert service.stats.requests_failed == 1
                # The pin was released despite the failure.
                assert all(
                    entry.pins == 0
                    for entry in service.residency._entries.values()
                )

        run(scenario())

    def test_vanished_version_fails_batch_not_scheduler(self, tenant_stack):
        # Regression: residency.acquire in _execute sat outside the failure
        # path, so a version evicted between batch formation and execution
        # (cancelled pins + hot-swap + capacity pressure) raised into the
        # scheduler task and silently killed the service.
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                future = service.submit_nowait(handle, make_pairs(0, 2))
                # Yank every resident version out from under the queued
                # request -- the eviction race in miniature.
                with service.residency._lock:
                    for entry in list(service.residency._entries.values()):
                        service.residency._evict(entry)
                with pytest.raises(RuntimeError, match="batch execution failed"):
                    await future
                # The scheduler task survived: a fresh publish serves again.
                service.register_tenant("t0", *tenant_stack)
                scores = await service.submit(handle, make_pairs(1, 2))
                assert scores.shape == (2,)

        run(scenario())


class TestLifecycle:
    def test_flush_drains_without_waiting_for_deadline(self, tenant_stack):
        async def scenario():
            config = small_config(max_wait_s=60.0)
            async with ServeService(config) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                future = service.submit_nowait(handle, make_pairs(0, 2))
                started = time.perf_counter()
                await service.flush()
                scores = await future
                assert time.perf_counter() - started < 30.0
                assert scores.shape == (2,)
                assert service.stats.forced_flushes >= 1

        run(scenario())

    def test_stop_drains_pending_requests(self, tenant_stack):
        async def scenario():
            config = small_config(max_wait_s=60.0)
            service = ServeService(config)
            await service.start()
            service.register_tenant("t0", *tenant_stack)
            handle = service.open_session("t0")
            future = service.submit_nowait(handle, make_pairs(3, 2))
            await service.stop()  # must not hang for 60s
            scores = await future
            assert scores.shape == (2,)

        run(scenario())

    def test_stop_is_idempotent_and_releases_arenas(self, tenant_stack):
        from repro.engine import live_segment_names

        async def scenario():
            service = ServeService(small_config())
            await service.start()
            service.register_tenant("t0", *tenant_stack)
            handle = service.open_session("t0")
            await service.submit(handle, make_pairs(5, 2))
            await service.stop()
            await service.stop()

        run(scenario())
        assert not live_segment_names()

    def test_submit_before_start_raises(self, tenant_stack):
        service = ServeService(small_config())
        service.register_tenant("t0", *tenant_stack)
        with pytest.raises(RuntimeError, match="not running"):
            service.submit_nowait(
                type("H", (), {"session_id": "s", "tenant": "t0"})(),
                make_pairs(0, 1),
            )

    def test_metrics_snapshot_covers_serve_and_residency(self, tenant_stack):
        async def scenario():
            async with ServeService(small_config()) as service:
                service.register_tenant("t0", *tenant_stack)
                handle = service.open_session("t0")
                await service.submit(handle, make_pairs(1, 3))
                return service.metrics_snapshot()

        snapshot = run(scenario())
        for key in (
            "serve.requests_submitted",
            "serve.requests_completed",
            "serve.batches",
            "serve.coalesce_ratio",
            "serve.latency_p50_ms",
            "serve.latency_p99_ms",
            "serve.queue_wait_p99_ms",
            "serve.queue_depth_peak",
            "serve.deadline_flushes",
            "residency.resident",
            "residency.evictions",
            "residency.eviction_refusals",
        ):
            assert key in snapshot, key
        assert snapshot["serve.requests_completed"] == 1
        assert snapshot["serve.pairs_scored"] == 3


class TestResidencyEviction:
    def test_lru_eviction_keeps_latest_and_pinned(self, tenant_stack):
        model, classifier, special_ids = tenant_stack
        residency = ModelResidency(capacity=2, use_shm=False)
        v1 = residency.publish("t0", model, classifier, special_ids)
        residency.acquire(v1)  # pin v1
        v2 = residency.publish("t0", model, classifier, special_ids)
        v3 = residency.publish("t0", model, classifier, special_ids)
        # Over capacity: v2 (unpinned, not latest) is the only candidate.
        assert residency.is_resident(v1)  # pinned
        assert not residency.is_resident(v2)  # evicted
        assert residency.is_resident(v3)  # latest
        assert residency.evictions == 1
        residency.close()

    def test_eviction_refused_when_everything_is_pinned_or_latest(
        self, tenant_stack
    ):
        model, classifier, special_ids = tenant_stack
        residency = ModelResidency(capacity=1, use_shm=False)
        v1 = residency.publish("t0", model, classifier, special_ids)
        residency.acquire(v1)
        v2 = residency.publish("t0", model, classifier, special_ids)
        # v1 pinned, v2 latest: nothing can go, refusal is counted.
        assert residency.is_resident(v1)
        assert residency.is_resident(v2)
        assert residency.eviction_refusals >= 1
        # Releasing the pin retries the eviction.
        residency.release(v1)
        assert not residency.is_resident(v1)
        assert residency.is_resident(v2)
        residency.close()

    def test_release_without_acquire_raises(self, tenant_stack):
        model, classifier, special_ids = tenant_stack
        residency = ModelResidency(capacity=2, use_shm=False)
        key = residency.publish("t0", model, classifier, special_ids)
        with pytest.raises(ResidencyError, match="release without acquire"):
            residency.release(key)
        residency.close()
