"""Property tests: scheduler fairness, admission bounds, pinned eviction.

The scheduler core is synchronous and clock-injected precisely so these
properties can be checked exhaustively with a simulated clock:

* **starvation-freedom** -- after ``ready_batches(now)`` returns, no pending
  request's deadline has passed and no pool is at its size target;
* **FIFO per session** -- a session's requests complete in submission order;
* **bounded queues** -- per-session depth never exceeds the configured bound
  and every over-bound submit raises;
* **admission invariants** -- open sessions and per-session in-flight counts
  never exceed their limits under arbitrary operation sequences;
* **pinned residency** -- LRU eviction never removes a pinned version or a
  tenant's latest version, no matter the publish/acquire/release order.
"""

from __future__ import annotations

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.lm.tokenizer import EncodedPair
from repro.serve import (
    AdmissionController,
    AdmissionError,
    CoalescingScheduler,
    ModelResidency,
    QueueFullError,
)

# One shared template pair: the scheduler only reads pair *lengths* (for
# bucketing), so reusing a single EncodedPair keeps example generation cheap.
_TEMPLATE = EncodedPair(
    input_ids=np.arange(16, dtype=np.int64),
    segment_ids=np.zeros(16, dtype=np.int64),
    attention_mask=np.ones(16, dtype=np.int64),
)


def _pairs(count: int) -> list[EncodedPair]:
    return [_TEMPLATE] * count


# A scripted scheduler interaction: submits interleaved with clock advances.
submit_op = st.tuples(
    st.just("submit"),
    st.integers(min_value=0, max_value=4),  # session index
    st.integers(min_value=0, max_value=2),  # model-key index
    st.integers(min_value=1, max_value=6),  # pairs in the request
)
advance_op = st.tuples(
    st.just("advance"),
    st.integers(min_value=0, max_value=20),  # clock ticks (1 tick = 1ms)
    st.just(0),
    st.just(0),
)
ops_strategy = st.lists(st.one_of(submit_op, advance_op), min_size=1, max_size=60)


class TestSchedulerProperties:
    @given(ops=ops_strategy)
    @settings(max_examples=80, deadline=None)
    def test_no_request_starves_and_queues_stay_bounded(self, ops):
        scheduler = CoalescingScheduler(
            max_wait_s=0.005,  # 5 ticks
            target_batch_pairs=10,
            max_batch_pairs=20,
            max_queue_per_session=4,
        )
        now = 0.0
        for op, a, b, c in ops:
            if op == "advance":
                now += a / 1000.0
            else:
                session = f"s{a}"
                try:
                    scheduler.submit(session, f"m{b}", _pairs(c), now)
                except QueueFullError:
                    # Only permitted exactly at the bound.
                    assert scheduler.session_depth(session) == 4
            scheduler.ready_batches(now)
            # Starvation-freedom: nothing pending is past its deadline, and
            # no pool has reached the flush-worthy size.
            deadline = scheduler.next_deadline()
            assert deadline is None or deadline > now
            for queue in scheduler._pending.values():
                assert sum(len(r.pairs) for r in queue) < 10
            # Bounded queues.
            for session_id, queue in scheduler._session_pending.items():
                assert 1 <= len(queue) <= 4

    @given(ops=ops_strategy)
    # Regression: one session's requests alternating model keys drained as
    # 1, 3, 2 when pools flushed whole-pool-at-a-time in dict order.
    @example(ops=[("submit", 0, 0, 1), ("submit", 0, 1, 1), ("submit", 0, 0, 1)])
    @settings(max_examples=80, deadline=None)
    def test_fifo_per_session_completion_order(self, ops):
        scheduler = CoalescingScheduler(
            max_wait_s=0.003,
            target_batch_pairs=8,
            max_batch_pairs=12,
            max_queue_per_session=8,
        )
        now = 0.0
        submitted: dict[str, list[int]] = {}
        drained: dict[str, list[int]] = {}

        def drain(at: float) -> None:
            for batch in scheduler.ready_batches(at):
                for request in batch.requests:
                    drained.setdefault(request.session_id, []).append(
                        request.request_id
                    )

        for op, a, b, c in ops:
            if op == "advance":
                now += a / 1000.0
            else:
                session = f"s{a}"
                try:
                    request = scheduler.submit(session, f"m{b}", _pairs(c), now)
                    submitted.setdefault(session, []).append(request.request_id)
                except QueueFullError:
                    pass
            drain(now)
        # Flush the tail so every submitted request completes.
        for batch in scheduler.flush_pending(now):
            for request in batch.requests:
                drained.setdefault(request.session_id, []).append(request.request_id)

        assert scheduler.pending_requests() == 0
        for session, ids in submitted.items():
            # Every request completed, in exactly the order it was submitted.
            assert drained.get(session, []) == ids

    def test_hot_swap_size_trigger_flushes_older_pool_first(self):
        # A session's pre-swap request (old version's pool) must complete
        # before its post-swap requests, even when only the *new* pool's
        # size trigger fires: the blocked drain forces the older pool to
        # flush early instead of reordering the session.
        scheduler = CoalescingScheduler(
            max_wait_s=60.0,
            target_batch_pairs=4,
            max_batch_pairs=8,
            max_queue_per_session=8,
        )
        scheduler.submit("s0", "m0", _pairs(1), 0.0)  # r1, before hot-swap
        scheduler.submit("s0", "m1", _pairs(2), 0.0)  # r2, after hot-swap
        scheduler.submit("s1", "m1", _pairs(2), 0.0)  # r3 fills m1 to target
        batches = scheduler.ready_batches(0.0)
        assert [batch.model_key for batch in batches] == ["m0", "m1"]
        assert [
            request.request_id for batch in batches for request in batch.requests
        ] == [1, 2, 3]

    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_batches_never_mix_model_keys_or_exceed_caps(self, ops):
        scheduler = CoalescingScheduler(
            max_wait_s=0.002,
            target_batch_pairs=6,
            max_batch_pairs=9,
            max_queue_per_session=8,
        )
        now = 0.0
        for op, a, b, c in ops:
            if op == "advance":
                now += a / 1000.0
            else:
                try:
                    scheduler.submit(f"s{a}", f"m{b}", _pairs(c), now)
                except QueueFullError:
                    pass
            for batch in scheduler.ready_batches(now):
                assert {r.model_key for r in batch.requests} == {batch.model_key}
                # The pair cap may be exceeded only by a single oversized
                # request that must still execute.
                if len(batch.requests) > 1:
                    assert batch.total_pairs <= 9
                # The plan covers exactly the batch's pairs.
                assert sum(len(mb.indices) for mb in batch.plan) == batch.total_pairs


admission_ops = st.lists(
    st.tuples(
        st.sampled_from(["open", "close", "begin", "end"]),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=80,
)


class TestAdmissionProperties:
    @given(ops=admission_ops)
    @settings(max_examples=100, deadline=None)
    def test_limits_never_exceeded(self, ops):
        controller = AdmissionController(max_sessions=3, max_inflight_per_session=2)
        begun: dict[str, int] = {}
        for op, index in ops:
            session = f"s{index}"
            try:
                if op == "open":
                    controller.open_session(session)
                elif op == "close":
                    controller.close_session(session)
                elif op == "begin":
                    controller.begin_request(session)
                    begun[session] = begun.get(session, 0) + 1
                elif op == "end":
                    if begun.get(session, 0) > 0:
                        controller.end_request(session)
                        begun[session] -= 1
            except AdmissionError:
                pass
            assert controller.active_sessions <= 3
            for index2 in range(6):
                assert controller.inflight(f"s{index2}") <= 2


residency_ops = st.lists(
    st.tuples(
        st.sampled_from(["publish", "acquire", "release"]),
        st.integers(min_value=0, max_value=2),  # tenant index
    ),
    min_size=1,
    max_size=40,
)


class _Weightless:
    """Minimal module protocol for residency tests (no real weights)."""

    def parameters(self):
        return {}

    def eval(self):
        return self

    def __deepcopy__(self, memo):
        return _Weightless()


class TestResidencyProperties:
    @given(ops=residency_ops)
    @settings(max_examples=100, deadline=None)
    def test_pinned_and_latest_versions_never_evicted(self, ops):
        residency = ModelResidency(capacity=2, use_shm=False)
        pinned: list[str] = []
        published: dict[str, list[str]] = {}
        for op, index in ops:
            tenant = f"t{index}"
            if op == "publish":
                key = residency.publish(tenant, _Weightless(), _Weightless(), [0])
                published.setdefault(tenant, []).append(key)
            elif op == "acquire" and published.get(tenant):
                key = residency.latest_key(tenant)
                residency.acquire(key)
                pinned.append(key)
            elif op == "release" and pinned:
                residency.release(pinned.pop())
            # Invariants after every operation:
            for key in pinned:
                assert residency.is_resident(key), f"pinned {key} evicted"
            for tenant_id in published:
                assert residency.is_resident(residency.latest_key(tenant_id))
        residency.close()
