"""Smoke tests: the CLI parser and the example scripts stay importable."""

import pathlib
import py_compile

import pytest

from repro.cli import build_parser

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["stats"])
        assert args.command == "stats"
        args = parser.parse_args(["baselines", "rdb_star"])
        assert args.dataset == "rdb_star"
        args = parser.parse_args(["session", "customer_a", "--noise", "0.2"])
        assert args.noise == 0.2

    def test_unknown_dataset_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["baselines", "bogus"])

    def test_stats_runs(self, capsys):
        from repro.cli import main

        main(["stats"])
        out = capsys.readouterr().out
        assert "customer_a" in out
        assert "1218" in out


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    assert len(EXAMPLES) >= 4
    py_compile.compile(str(path), doraise=True)
