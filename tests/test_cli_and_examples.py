"""Smoke tests: the CLI parser and the example scripts stay importable."""

import pathlib
import py_compile

import pytest

from repro.cli import build_parser

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["stats"])
        assert args.command == "stats"
        args = parser.parse_args(["baselines", "rdb_star"])
        assert args.dataset == "rdb_star"
        args = parser.parse_args(["session", "customer_a", "--noise", "0.2"])
        assert args.noise == 0.2

    def test_train_stats_parses(self):
        parser = build_parser()
        args = parser.parse_args(["train", "stats", "--fast", "--labels", "2"])
        assert args.command == "train"
        assert args.action == "stats"
        assert args.fast and args.labels == 2
        assert args.dataset == "rdb_star"
        with pytest.raises(SystemExit):
            parser.parse_args(["train", "bogus"])

    def test_unknown_dataset_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["baselines", "bogus"])

    def test_drift_replay_parses(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args(
            [
                "drift",
                "replay",
                "--dataset",
                "customer_a",
                "--deltas",
                "2",
                "--ops",
                "3",
                "--seed",
                "1",
                "--fast",
                "--trace",
                str(tmp_path / "drift.ndjson"),
            ]
        )
        assert args.command == "drift"
        assert args.action == "replay"
        assert args.deltas == 2 and args.ops == 3 and args.seed == 1
        assert args.fast
        with pytest.raises(SystemExit):
            parser.parse_args(["drift", "bogus"])

    def test_stats_runs(self, capsys):
        from repro.cli import main

        main(["stats"])
        out = capsys.readouterr().out
        assert "customer_a" in out
        assert "1218" in out


class TestCacheCli:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        yield tmp_path

    def test_parser_accepts_actions(self):
        from repro.cli import build_parser

        parser = build_parser()
        for action in ("stats", "verify", "clear"):
            args = parser.parse_args(["cache", action])
            assert args.action == action
        with pytest.raises(SystemExit):
            parser.parse_args(["cache", "bogus"])

    def test_stats_reports_counters(self, capsys):
        import numpy as np

        from repro import store
        from repro.cli import main

        store.save_arrays("bert", "k", {"a": np.zeros(2)})
        store.load_arrays("bert", "k")
        main(["cache", "stats"])
        out = capsys.readouterr().out
        for counter in ("hits", "misses", "corruption_events", "bytes_written"):
            assert counter in out

    def test_verify_reports_corruption_and_fails(self, capsys):
        import numpy as np

        from repro import store
        from repro.cli import main

        good = store.save_arrays("bert", "good", {"a": np.zeros(2)})
        bad = store.save_arrays("bert", "bad", {"a": np.zeros(2)})
        bad.write_bytes(b"rotten")
        with pytest.raises(SystemExit):
            main(["cache", "verify"])
        out = capsys.readouterr().out
        assert good.name in out and bad.name in out
        assert "corrupt" in out and "1 corrupt" in out

    def test_verify_ok_exits_cleanly(self, capsys):
        import numpy as np

        from repro import store
        from repro.cli import main

        store.save_arrays("bert", "good", {"a": np.zeros(2)})
        main(["cache", "verify"])
        assert "1 ok, 0 corrupt" in capsys.readouterr().out

    def test_clear_removes_files(self, capsys, isolated_cache):
        import numpy as np

        from repro import store
        from repro.cli import main

        store.save_arrays("bert", "k", {"a": np.zeros(2)})
        main(["cache", "clear"])
        assert "Removed" in capsys.readouterr().out
        assert [p for p in isolated_cache.rglob("*") if p.is_file()] == []


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    assert len(EXAMPLES) >= 4
    py_compile.compile(str(path), doraise=True)
