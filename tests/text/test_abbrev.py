"""Tests for the abbreviation dictionary."""

from repro.text import (
    ABBREVIATIONS,
    abbreviate_word,
    expand_identifier,
    expand_token,
    expand_tokens,
    is_abbreviation,
)


class TestAbbreviations:
    def test_expand_token(self):
        assert expand_token("qty") == "quantity"
        assert expand_token("QTY") == "quantity"
        assert expand_token("unknownword") == "unknownword"

    def test_expand_tokens_multiword(self):
        assert expand_tokens(["ean"]) == ["european", "article", "number"]

    def test_expand_identifier(self):
        assert expand_identifier("cust_addr") == "customer address"
        assert expand_identifier("ord_qty") == "order quantity"

    def test_abbreviate_word_round_trip(self):
        # Single-word expansions abbreviate back to a known abbreviation.
        word = "quantity"
        abbreviation = abbreviate_word(word)
        assert abbreviation != word
        assert expand_token(abbreviation) == word

    def test_is_abbreviation(self):
        assert is_abbreviation("qty")
        assert is_abbreviation("EAN")
        assert not is_abbreviation("quantity")

    def test_table_is_lowercase_and_nonempty(self):
        assert len(ABBREVIATIONS) > 50
        for abbreviation, expansion in ABBREVIATIONS.items():
            assert abbreviation == abbreviation.lower()
            assert expansion == expansion.lower()
            assert abbreviation != expansion
