"""Tests for identifier tokenisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    name_and_description_tokens,
    normalize_identifier,
    split_identifier,
    words,
)


class TestSplitIdentifier:
    def test_snake_case(self):
        assert split_identifier("product_item_price_amount") == [
            "product",
            "item",
            "price",
            "amount",
        ]

    def test_camel_case(self):
        assert split_identifier("totalOrderLineAmount") == [
            "total",
            "order",
            "line",
            "amount",
        ]

    def test_pascal_case(self):
        assert split_identifier("TotalOrderLineAmount") == [
            "total",
            "order",
            "line",
            "amount",
        ]

    def test_acronym_boundary(self):
        assert split_identifier("EANCode") == ["ean", "code"]

    def test_digit_boundaries(self):
        assert split_identifier("address2") == ["address", "2"]
        assert split_identifier("hbips_2a") == ["hbips", "2", "a"]

    def test_mixed_separators(self):
        assert split_identifier("order-date.time stamp") == [
            "order",
            "date",
            "time",
            "stamp",
        ]

    def test_single_acronym(self):
        assert split_identifier("EAN") == ["ean"]

    def test_empty_and_punctuation(self):
        assert split_identifier("") == []
        assert split_identifier("___") == []
        assert split_identifier("a$b") == ["ab"] or split_identifier("a$b") == ["a", "b"]

    def test_screaming_snake(self):
        assert split_identifier("ORDER_ID") == ["order", "id"]


class TestNormalizeAndWords:
    def test_normalize(self):
        assert normalize_identifier("PriceChangePercentage") == "price change percentage"
        assert normalize_identifier("price_change_percentage") == "price change percentage"

    def test_words_from_text(self):
        assert words("The quantity, purchased!") == ["the", "quantity", "purchased"]

    def test_name_and_description_tokens(self):
        tokens = name_and_description_tokens("qty", "the quantity purchased")
        assert tokens == ["qty", "the", "quantity", "purchased"]
        assert name_and_description_tokens("qty") == ["qty"]


@settings(max_examples=50, deadline=None)
@given(st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,20}", fullmatch=True))
def test_property_tokens_are_lowercase_alnum(identifier):
    for token in split_identifier(identifier):
        assert token == token.lower()
        assert token.isalnum()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.from_regex(r"[a-z]{1,8}", fullmatch=True), min_size=1, max_size=5))
def test_property_snake_case_round_trip(tokens):
    """Joining tokens with underscores and re-splitting is the identity."""
    assert split_identifier("_".join(tokens)) == tokens
