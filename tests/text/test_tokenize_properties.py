"""Property-based tests for identifier/text tokenisation.

Random identifiers in any naming convention must tokenise without crashing,
produce canonical lower-case alphanumeric tokens, and be stable under
re-tokenisation (splitting is idempotent).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.tokenize import (
    name_and_description_tokens,
    normalize_identifier,
    split_identifier,
    words,
)

#: Anything a schema column could plausibly be called -- including junk.
identifiers = st.text(max_size=40)
#: Identifier-looking strings: the interesting well-formed subset.
wordy_identifiers = st.from_regex(r"[A-Za-z0-9_.\- ]{0,32}", fullmatch=True)


@settings(max_examples=100, deadline=None)
@given(identifiers)
def test_split_identifier_never_crashes_and_is_canonical(name):
    tokens = split_identifier(name)
    for token in tokens:
        assert token, "no empty tokens"
        assert token == token.lower()
        assert token.isalnum()


@settings(max_examples=100, deadline=None)
@given(st.one_of(identifiers, wordy_identifiers))
def test_split_identifier_is_idempotent(name):
    tokens = split_identifier(name)
    assert split_identifier(" ".join(tokens)) == tokens


@settings(max_examples=100, deadline=None)
@given(st.one_of(identifiers, wordy_identifiers))
def test_normalize_identifier_is_idempotent(name):
    normalized = normalize_identifier(name)
    assert normalize_identifier(normalized) == normalized


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=80))
def test_words_never_crashes_and_is_canonical(text):
    for token in words(text):
        assert token == token.lower()
        assert token.isalnum()


@settings(max_examples=100, deadline=None)
@given(identifiers, st.text(max_size=60))
def test_name_and_description_concatenates(name, description):
    combined = name_and_description_tokens(name, description)
    assert combined[: len(split_identifier(name))] == split_identifier(name)
    if description:
        assert combined[len(split_identifier(name)) :] == words(description)
