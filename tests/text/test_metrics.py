"""Tests for string similarity metrics, including property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    TfIdfSpace,
    affix_similarity,
    dice_similarity,
    edit_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    lcs_ratio,
    levenshtein,
    longest_common_subsequence,
    longest_common_substring,
    monge_elkan,
    ngram_similarity,
    soundex,
    soundex_similarity,
    substring_similarity,
)

_word = st.from_regex(r"[a-z]{0,12}", fullmatch=True)


class TestLevenshtein:
    def test_known_values(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("abc", "abc") == 0
        assert levenshtein("", "abc") == 3

    @settings(max_examples=60, deadline=None)
    @given(_word, _word)
    def test_property_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @settings(max_examples=60, deadline=None)
    @given(_word, _word, _word)
    def test_property_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @settings(max_examples=60, deadline=None)
    @given(_word, _word)
    def test_property_bounds(self, a, b):
        distance = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))


class TestLcs:
    def test_known_values(self):
        assert longest_common_subsequence("qty", "quantity") == 3
        assert longest_common_subsequence("abc", "xyz") == 0

    def test_lcs_ratio_abbreviation_friendly(self):
        # Every character of "qty" appears in order inside "quantity".
        assert lcs_ratio("qty", "quantity") == 1.0

    def test_lcs_ratio_empty(self):
        assert lcs_ratio("", "abc") == 0.0

    @settings(max_examples=60, deadline=None)
    @given(_word, _word)
    def test_property_lcs_bounded_by_shorter(self, a, b):
        assert longest_common_subsequence(a, b) <= min(len(a), len(b))

    @settings(max_examples=60, deadline=None)
    @given(_word)
    def test_property_self_similarity(self, a):
        if a:
            assert lcs_ratio(a, a) == 1.0

    def test_substring(self):
        assert longest_common_substring("abcdef", "zabcy") == 3
        assert substring_similarity("abc", "abc") == 1.0


class TestComaMetrics:
    def test_affix(self):
        assert affix_similarity("order_id", "order_date") > 0.5
        assert affix_similarity("abc", "xyz") == 0.0
        assert affix_similarity("", "x") == 0.0

    def test_ngram_identical(self):
        assert ngram_similarity("discount", "discount") == pytest.approx(1.0)

    def test_ngram_disjoint(self):
        assert ngram_similarity("aaa", "zzz") == 0.0

    def test_soundex_codes(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("") == ""
        assert soundex_similarity("Robert", "Rupert") == 1.0

    @settings(max_examples=60, deadline=None)
    @given(_word, _word)
    def test_property_similarities_in_unit_interval(self, a, b):
        for metric in (
            edit_similarity,
            ngram_similarity,
            affix_similarity,
            soundex_similarity,
            jaro_similarity,
            jaro_winkler_similarity,
        ):
            value = metric(a, b)
            assert 0.0 <= value <= 1.0, metric.__name__


class TestJaro:
    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_prefix_boost(self):
        plain = jaro_similarity("prefix_a", "prefix_b")
        boosted = jaro_winkler_similarity("prefix_a", "prefix_b")
        assert boosted >= plain

    def test_identity(self):
        assert jaro_similarity("same", "same") == 1.0


class TestTokenSetMetrics:
    def test_jaccard(self):
        assert jaccard_similarity(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard_similarity([], []) == 1.0

    def test_dice(self):
        assert dice_similarity(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

    def test_monge_elkan_asymmetric_coverage(self):
        score = monge_elkan(["order"], ["order", "line", "total"])
        assert score == pytest.approx(1.0)

    def test_monge_elkan_empty(self):
        assert monge_elkan([], ["a"]) == 0.0


class TestTfIdf:
    def test_identical_document_is_nearest(self):
        space = TfIdfSpace([["order", "id"], ["product", "name"], ["tax", "rate"]])
        similarities = space.similarity_to_documents(["product", "name"])
        assert max(similarities) == similarities[1]
        assert similarities[1] == pytest.approx(1.0)

    def test_empty_query(self):
        space = TfIdfSpace([["a"]])
        assert space.similarity_to_documents([]) == [0.0]

    def test_idf_downweights_common_tokens(self):
        space = TfIdfSpace([["common", "rare1"], ["common", "rare2"]])
        vector = space.encode(["common", "rare1"])
        assert vector["rare1"] > vector["common"]
