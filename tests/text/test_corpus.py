"""Tests for the synthetic pre-training corpus generator."""

from repro.text import (
    abbreviation_sentences,
    build_corpus,
    corpus_vocabulary,
    default_lexicon,
    lexicon_sentences,
    schema_sentences,
)


class TestSchemaSentences:
    def test_every_attribute_yields_a_sentence(self, target_schema):
        sentences = schema_sentences(target_schema)
        text = {" ".join(sentence) for sentence in sentences}
        assert any("price change percentage" in t for t in text)
        assert any("european article number" in t for t in text)

    def test_relationships_produce_reference_sentences(self, target_schema):
        sentences = schema_sentences(target_schema)
        assert any("references" in sentence for sentence in sentences)

    def test_descriptions_included(self, target_schema):
        sentences = schema_sentences(target_schema)
        assert any("purchased" in sentence for sentence in sentences)


class TestLexiconAndAbbrevSentences:
    def test_lexicon_sentences_pair_synonyms(self, rng):
        sentences = lexicon_sentences(default_lexicon(), rng, repeats=1)
        joined = {" ".join(sentence) for sentence in sentences}
        assert any("discount" in t and "markdown" in t for t in joined)

    def test_abbreviation_sentences_align_forms(self, rng):
        sentences = abbreviation_sentences(rng, repeats=1)
        joined = {" ".join(sentence) for sentence in sentences}
        assert any("qty" in t and "quantity" in t for t in joined)


class TestBuildCorpus:
    def test_deterministic_for_seed(self, target_schema):
        corpus_a = build_corpus([target_schema], seed=3)
        corpus_b = build_corpus([target_schema], seed=3)
        assert corpus_a == corpus_b

    def test_different_seeds_differ(self, target_schema):
        assert build_corpus([target_schema], seed=1) != build_corpus(
            [target_schema], seed=2
        )

    def test_no_empty_sentences(self, target_schema):
        for sentence in build_corpus([target_schema], seed=0):
            assert sentence

    def test_vocabulary_covers_schema_and_lexicon(self, target_schema):
        corpus = build_corpus([target_schema], seed=0)
        vocabulary = corpus_vocabulary(corpus)
        assert {"transaction", "quantity", "discount", "markdown"} <= vocabulary

    def test_corpus_without_schema_still_builds(self):
        corpus = build_corpus(seed=0)
        assert len(corpus) > 500
