"""Tests for the synonym lexicon (the WordNet/world-knowledge substitute)."""

import numpy as np
import pytest

from repro.text import SynonymLexicon, default_lexicon


class TestSynonymLexicon:
    def test_paper_example_pair(self):
        lexicon = default_lexicon()
        assert lexicon.are_synonyms("discount", "price_change_percentage")
        assert lexicon.are_synonyms("PriceChangePercentage", "discount")

    def test_identity_is_synonym(self):
        lexicon = default_lexicon()
        assert lexicon.are_synonyms("discount", "discount")

    def test_non_synonyms(self):
        lexicon = default_lexicon()
        assert not lexicon.are_synonyms("discount", "warehouse")
        assert not lexicon.are_synonyms("nonexistentphrase", "discount")

    def test_synonyms_excludes_self(self):
        lexicon = default_lexicon()
        synonyms = lexicon.synonyms("discount")
        assert "discount" not in synonyms
        assert "markdown" in synonyms

    def test_multi_group_membership_unions(self):
        lexicon = SynonymLexicon([["a", "b"], ["a", "c"]])
        assert lexicon.synonyms("a") == {"b", "c"}
        assert lexicon.are_synonyms("a", "c")
        # b and c only relate through a; they are not direct synonyms.
        assert not lexicon.are_synonyms("b", "c")

    def test_random_synonym_deterministic(self):
        lexicon = default_lexicon()
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        assert lexicon.random_synonym("discount", rng_a) == lexicon.random_synonym(
            "discount", rng_b
        )

    def test_random_synonym_none_for_unknown(self, rng):
        lexicon = default_lexicon()
        assert lexicon.random_synonym("zzzznonexistent", rng) is None

    def test_iter_synonym_pairs_symmetric_coverage(self):
        lexicon = SynonymLexicon([["a", "b", "c"]])
        pairs = set(lexicon.iter_synonym_pairs())
        assert pairs == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_vocabulary_contains_phrase_words(self):
        lexicon = default_lexicon()
        vocabulary = lexicon.vocabulary()
        assert {"price", "change", "percentage", "discount"} <= vocabulary

    def test_contains(self):
        lexicon = default_lexicon()
        assert "discount" in lexicon
        assert "zzz_not_in_lexicon" not in lexicon

    def test_len(self):
        assert len(SynonymLexicon([["a", "b"]])) == 1
        assert len(default_lexicon()) > 100
