"""Corruption-handling tests for the resilient artifact store.

Every failure mode that used to crash the whole suite (truncated archive,
zero-byte file, checksum mismatch, interrupted write) must now behave as a
cache miss: the caller recomputes, the damaged file is quarantined as
``<name>.corrupt`` — never silently deleted — and the event is counted.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.store import (
    ArtifactStore,
    CacheStats,
    QUARANTINE_SUFFIX,
    TMP_PREFIX,
)
from repro.store.integrity import sidecar_path
from repro.store.store import FORMAT_VERSION


ARRAYS = {"w": np.arange(12, dtype=np.float32).reshape(3, 4)}


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "cache")


def saved_npz(store: ArtifactStore):
    path = store.save_arrays("bert", "k1", ARRAYS)
    assert path is not None and path.exists()
    return path


class TestRoundTrip:
    def test_arrays(self, store):
        saved_npz(store)
        loaded = store.load_arrays("bert", "k1")
        assert loaded is not None
        assert np.array_equal(loaded["w"], ARRAYS["w"])

    def test_json(self, store):
        store.save_json("vocab", "k1", {"tokens": ["a", "b"]})
        assert store.load_json("vocab", "k1") == {"tokens": ["a", "b"]}

    def test_missing_is_a_miss(self, store):
        assert store.load_arrays("bert", "absent") is None
        assert store.load_json("vocab", "absent") is None
        assert store.stats.misses == 2

    def test_entries_live_in_versioned_namespace(self, store):
        path = saved_npz(store)
        assert path.parent == store.root / f"v{FORMAT_VERSION}"

    def test_sidecar_written(self, store):
        path = saved_npz(store)
        assert sidecar_path(path).exists()
        digest = sidecar_path(path).read_text().strip()
        assert len(digest) == 64


class TestCorruptionFallback:
    """Damaged entries are misses + quarantine, never exceptions."""

    def test_truncated_archive(self, store):
        path = saved_npz(store)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert store.load_arrays("bert", "k1") is None
        assert not path.exists()
        quarantined = path.with_name(path.name + QUARANTINE_SUFFIX)
        assert quarantined.exists(), "corrupt file must be kept, not deleted"

    def test_zero_byte_file(self, store):
        path = saved_npz(store)
        path.write_bytes(b"")
        assert store.load_arrays("bert", "k1") is None
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()

    def test_checksum_mismatch_same_length(self, store):
        path = saved_npz(store)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # single-bit-ish rot, length preserved
        path.write_bytes(bytes(data))
        assert store.load_arrays("bert", "k1") is None
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()

    def test_corrupt_without_sidecar_caught_by_deep_read(self, store):
        # a hand-dropped file with no checksum still cannot crash the load
        path = store.array_path("bert", "k1")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a zip archive at all")
        assert store.load_arrays("bert", "k1") is None
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()

    def test_corrupt_json(self, store):
        store.save_json("vocab", "k1", [1, 2, 3])
        path = store.json_path("vocab", "k1")
        path.write_text("{truncated")
        assert store.load_json("vocab", "k1") is None
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()

    def test_recompute_and_resave_after_quarantine(self, store):
        path = saved_npz(store)
        path.write_bytes(b"garbage")
        assert store.load_arrays("bert", "k1") is None  # quarantined
        saved_npz(store)  # caller recomputes and re-saves under the same key
        loaded = store.load_arrays("bert", "k1")
        assert loaded is not None
        assert np.array_equal(loaded["w"], ARRAYS["w"])
        # the evidence from the first corruption is still on disk
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()


class TestInterruptedWrite:
    def test_failed_replace_leaves_no_final_file(self, store, monkeypatch):
        real_replace = os.replace

        def exploding_replace(src, dst, *args, **kwargs):
            if str(dst).endswith(".npz"):
                raise OSError("simulated crash mid-rename")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", exploding_replace)
        assert store.save_arrays("bert", "k1", ARRAYS) is None
        monkeypatch.undo()
        assert store.load_arrays("bert", "k1") is None  # clean miss
        assert store.stats.write_failures == 1

    def test_stale_temp_file_is_invisible_to_loads(self, store):
        saved_npz(store)
        stale = store.namespace / f"{TMP_PREFIX}deadbeef.npz"
        stale.write_bytes(b"half-written")
        loaded = store.load_arrays("bert", "k1")
        assert loaded is not None  # the real entry is unaffected
        statuses = {r.path.name: r.status for r in store.verify()}
        assert statuses[stale.name] == "stale-temp"

    def test_truncated_final_file_from_legacy_writer(self, store):
        # what the old non-atomic writer could produce: a partial file at
        # the final path with no sidecar
        path = store.array_path("bert", "k1")
        path.parent.mkdir(parents=True, exist_ok=True)
        good = saved_npz(store)
        data = good.read_bytes()
        sidecar_path(good).unlink()
        path.write_bytes(data[:100])
        assert store.load_arrays("bert", "k1") is None
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()


class TestVerify:
    def test_reports_every_state(self, store):
        good = saved_npz(store)
        bad = store.save_arrays("emb", "k2", ARRAYS)
        bad.write_bytes(b"rotten")
        (store.namespace / f"{TMP_PREFIX}x.npz").write_bytes(b"")
        legacy = store.root / "bert-legacy.npz"
        np.savez_compressed(legacy, **ARRAYS)
        store.load_json("vocab", "gone")  # miss; no file created
        results = {r.path.name: r for r in store.verify()}
        assert results[good.name].status == "ok"
        assert results[bad.name].status == "corrupt"
        assert "checksum mismatch" in results[bad.name].detail
        assert results[f"{TMP_PREFIX}x.npz"].status == "stale-temp"
        assert results[legacy.name].status == "legacy"

    def test_verify_is_read_only(self, store):
        bad = saved_npz(store)
        bad.write_bytes(b"rotten")
        store.verify()
        assert bad.exists(), "verify must not quarantine or delete"

    def test_quarantined_entries_reported_once(self, store):
        path = saved_npz(store)
        path.write_bytes(b"rotten")
        store.load_arrays("bert", "k1")  # quarantines data + sidecar
        rows = [r for r in store.verify() if r.status == "quarantined"]
        assert len(rows) == 1  # the sidecar does not get its own row

    def test_empty_store(self, store):
        assert store.verify() == []


class TestClear:
    def test_sweeps_everything(self, store):
        saved_npz(store)
        store.save_json("vocab", "k1", [1])
        corrupt = store.array_path("x", "y")
        corrupt.parent.mkdir(parents=True, exist_ok=True)
        corrupt.write_bytes(b"bad")
        store.load_arrays("x", "y")  # leaves x-y.npz.corrupt behind
        (store.namespace / f"{TMP_PREFIX}orphan.npz").write_bytes(b"")
        removed = store.clear()
        leftovers = [p for p in store.root.rglob("*") if p.is_file()]
        assert leftovers == []
        assert removed >= 6  # 2 entries + 2 sidecars + quarantine + temp

    def test_clear_empty_root(self, tmp_path):
        assert ArtifactStore(tmp_path / "never-created").clear() == 0


class TestStatsAccounting:
    def test_counters(self, store):
        store.load_arrays("bert", "k1")  # miss
        path = saved_npz(store)  # write
        nbytes = path.stat().st_size
        store.load_arrays("bert", "k1")  # hit
        path.write_bytes(b"junk")
        store.load_arrays("bert", "k1")  # corruption
        stats = store.stats
        assert (stats.hits, stats.misses, stats.corruption_events) == (1, 1, 1)
        assert stats.writes == 1
        assert stats.bytes_written == nbytes
        assert stats.quarantined == [path.name]

    def test_persistent_ledger_across_instances(self, store):
        saved_npz(store)
        store.load_arrays("bert", "k1")
        fresh = ArtifactStore(store.root)
        cumulative = fresh.persistent_stats()
        assert cumulative.writes == 1
        assert cumulative.hits == 1
        assert fresh.stats.hits == 0  # session view starts clean

    def test_merge(self):
        a = CacheStats(hits=1, quarantined=["x"])
        b = CacheStats(hits=2, corruption_events=1, quarantined=["y"])
        merged = a.merge(b)
        assert merged.hits == 3
        assert merged.corruption_events == 1
        assert merged.quarantined == ["x", "y"]

    def test_ledger_tolerates_corruption(self, store):
        saved_npz(store)
        (store.root / "stats-ledger.json").write_text("{broken")
        # a damaged ledger must neither crash nor poison future accounting
        store.load_arrays("bert", "k1")
        assert store.persistent_stats().hits >= 1
