"""Tests for the artefact store's advisory lockfile."""

from __future__ import annotations

import os
import time

import pytest

from repro.store import FileLock, LockTimeout


def test_exclusive_while_held(tmp_path):
    path = tmp_path / "entry.lock"
    with FileLock(path):
        assert path.exists()
        contender = FileLock(path, timeout=0.2, poll_interval=0.02)
        with pytest.raises(LockTimeout):
            contender.acquire()
    assert not path.exists()


def test_reacquire_after_release(tmp_path):
    path = tmp_path / "entry.lock"
    with FileLock(path):
        pass
    with FileLock(path, timeout=0.5):
        assert path.read_text() == str(os.getpid())


def test_stale_lock_is_broken(tmp_path):
    path = tmp_path / "entry.lock"
    path.write_text("99999999")  # crashed holder
    old = time.time() - 120
    os.utime(path, (old, old))
    with FileLock(path, timeout=1.0, stale_after=60.0):
        assert path.exists()
    assert not path.exists()


def test_fresh_foreign_lock_is_respected(tmp_path):
    path = tmp_path / "entry.lock"
    path.write_text("99999999")  # live holder, recent mtime
    contender = FileLock(path, timeout=0.2, poll_interval=0.02, stale_after=60.0)
    with pytest.raises(LockTimeout):
        contender.acquire()
    assert path.exists()
