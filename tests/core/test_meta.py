"""Tests for the logistic base classifier and self-training wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SelfTrainingClassifier, fit_logistic


def separable_data(rng, n=200):
    """1-D separable problem embedded in 3 features."""
    features = rng.random((n, 3))
    labels = (features[:, 0] > 0.5).astype(np.int64)
    return features, labels


class TestFitLogistic:
    def test_learns_separable_problem(self, rng):
        features, labels = separable_data(rng)
        model = fit_logistic(features, labels, l2=1e-3)
        predictions = model.predict_probability(features) > 0.5
        assert (predictions == labels).mean() > 0.95

    def test_informative_feature_gets_positive_weight(self, rng):
        features, labels = separable_data(rng)
        model = fit_logistic(features, labels, l2=1e-3)
        assert model.weights[0] > abs(model.weights[1])
        assert model.weights[0] > abs(model.weights[2])

    def test_requires_both_classes(self, rng):
        features = rng.random((10, 2))
        with pytest.raises(ValueError):
            fit_logistic(features, np.ones(10))

    def test_rejects_bad_labels(self, rng):
        with pytest.raises(ValueError):
            fit_logistic(rng.random((4, 2)), np.array([0, 1, 2, 1]))

    def test_balanced_weights_handle_imbalance(self, rng):
        # 5 positives vs 500 negatives; balanced fit must not collapse.
        negatives = rng.random((500, 1)) * 0.4
        positives = rng.random((5, 1)) * 0.4 + 0.6
        features = np.vstack([negatives, positives])
        labels = np.array([0] * 500 + [1] * 5)
        model = fit_logistic(features, labels)
        assert model.predict_probability(np.array([[0.9]]))[0] > 0.5
        assert model.predict_probability(np.array([[0.1]]))[0] < 0.5

    def test_nonnegative_projection(self, rng):
        # A feature anti-correlated with the label would get a negative
        # weight; projection clips it at zero.
        features = rng.random((100, 2))
        labels = (features[:, 1] < 0.5).astype(np.int64)  # anti-correlated
        model = fit_logistic(features, labels, nonnegative=True)
        assert (model.weights[:-1] >= 0).all()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_probabilities_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        features, labels = separable_data(rng, n=50)
        model = fit_logistic(features, labels)
        probabilities = model.predict_probability(rng.random((20, 3)))
        assert ((0 <= probabilities) & (probabilities <= 1)).all()


class TestSelfTraining:
    def test_prior_fallback_without_labels(self, rng):
        classifier = SelfTrainingClassifier()
        features = rng.random((10, 3))
        labels = np.full(10, -1)
        assert classifier.fit(features, labels) is None
        predictions = classifier.predict(features)
        assert np.allclose(predictions, features.mean(axis=1))

    def test_prior_fallback_with_single_class(self, rng):
        classifier = SelfTrainingClassifier()
        features = rng.random((10, 3))
        labels = np.full(10, -1)
        labels[0] = 1
        assert classifier.fit(features, labels) is None

    def test_fits_with_both_classes(self, rng):
        classifier = SelfTrainingClassifier(rounds=2, l2=0.05)
        features, true_labels = separable_data(rng)
        labels = np.full(features.shape[0], -1)
        labels[:30] = true_labels[:30]
        result = classifier.fit(features, labels)
        assert result is not None
        predictions = classifier.predict(features) > 0.5
        assert (predictions == true_labels).mean() > 0.85

    def test_pseudo_labels_added(self, rng):
        classifier = SelfTrainingClassifier(rounds=3, confidence_threshold=0.8)
        features, true_labels = separable_data(rng)
        labels = np.full(features.shape[0], -1)
        labels[:40] = true_labels[:40]
        result = classifier.fit(features, labels)
        assert result is not None
        assert result.pseudo_labels_added > 0

    def test_prior_blend_shrinks_with_few_positives(self, rng):
        features, true_labels = separable_data(rng, n=60)
        labels = np.full(60, -1)
        # Two positives, several negatives.
        positive_ids = np.flatnonzero(true_labels == 1)[:2]
        negative_ids = np.flatnonzero(true_labels == 0)[:10]
        labels[positive_ids] = 1
        labels[negative_ids] = 0
        classifier = SelfTrainingClassifier(rounds=0, prior_blend_full_at=10)
        classifier.fit(features, labels)
        blended = classifier.predict(features)
        pure = classifier.model.predict_probability(features)
        prior = classifier.prior_scores(features)
        # Blend must lie between the prior and the learned model.
        expected = 0.2 * pure + 0.8 * prior
        assert np.allclose(blended, expected)

    def test_self_training_never_flips_user_labels(self, rng):
        classifier = SelfTrainingClassifier(rounds=3, l2=0.05)
        features, true_labels = separable_data(rng)
        labels = np.full(features.shape[0], -1)
        labels[:30] = true_labels[:30]
        classifier.fit(features, labels)
        # The fitted model at least classifies the given labels correctly.
        predictions = classifier.predict(features[:30]) > 0.5
        assert (predictions == true_labels[:30]).mean() > 0.9
