"""Regression tests for :class:`MatchingSession` thread-safety and close().

The serving front end shares one session between a scoring task and the
user's feedback stream, and may close it while a ``run()`` is mid-flight.
These pin the contract: ``close()`` is idempotent, the predict/label surface
raises (never corrupts) after close, concurrent mutators serialise under the
session lock, and a close landing mid-run stops the loop at an iteration
boundary instead of tearing the matcher out from under a scoring pass.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import (
    GroundTruthOracle,
    LearnedSchemaMatcher,
    LsmConfig,
    MatchingSession,
)
from repro.featurizers.bert import BertFeaturizerConfig
from repro.schema import AttributeRef


@pytest.fixture()
def session(source_schema, target_schema, tiny_artifacts, ground_truth):
    config = LsmConfig(
        bert=BertFeaturizerConfig(
            max_length=24, pretrain_epochs=1, update_epochs=1, batch_size=16, seed=0
        ),
        seed=0,
    )
    matcher = LearnedSchemaMatcher(
        source_schema, target_schema, config=config, artifacts=tiny_artifacts
    )
    oracle = GroundTruthOracle(ground_truth, target_schema)
    session = MatchingSession(matcher, oracle)
    yield session
    session.close()


class TestClose:
    def test_close_is_idempotent(self, session):
        session.close()
        session.close()  # second close must be a no-op, not a double-release
        assert session.closed

    def test_context_manager_tolerates_explicit_close(self, session):
        with session:
            session.close()
        assert session.closed  # __exit__ closed an already-closed session

    def test_predict_after_close_raises(self, session):
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.predict()

    def test_mutators_after_close_raise(self, session, ground_truth):
        source = AttributeRef("Orders", "qty")
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.record_match(source, ground_truth[source])
        with pytest.raises(RuntimeError, match="closed"):
            session.record_rejected(source, [ground_truth[source]])

    def test_run_after_close_raises(self, session):
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run()


class TestConcurrentAccess:
    def test_threaded_predict_and_record_serialise(self, session, ground_truth):
        """Hammer predict() and the label mutators from racing threads; the
        session lock must serialise them with no exception or corruption."""
        errors: list[BaseException] = []
        barrier = threading.Barrier(3)
        items = list(ground_truth.items())

        def predicts():
            try:
                barrier.wait(timeout=30)
                for _ in range(3):
                    predictions = session.predict()
                    assert predictions.suggestions
            except BaseException as error:
                errors.append(error)

        def records():
            try:
                barrier.wait(timeout=30)
                for source, target in items[:4]:
                    session.record_match(source, target)
            except BaseException as error:
                errors.append(error)

        def rejects():
            try:
                barrier.wait(timeout=30)
                source, target = items[-1]
                for _ in range(3):
                    session.record_rejected(source, [target])
            except BaseException as error:
                errors.append(error)

        threads = [
            threading.Thread(target=fn) for fn in (predicts, records, rejects)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors
        # The recorded matches all landed.
        matched = session.matcher.store.matched_sources()
        assert {source for source, _ in items[:4]} <= set(matched)

    def test_close_during_run_stops_at_iteration_boundary(
        self, source_schema, target_schema, tiny_artifacts, ground_truth
    ):
        config = LsmConfig(
            bert=BertFeaturizerConfig(
                max_length=24, pretrain_epochs=1, update_epochs=1, batch_size=16, seed=0
            ),
            seed=0,
        )
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        session = MatchingSession(matcher, oracle)
        started = threading.Event()
        original_predict = matcher.predict

        def signalling_predict():
            started.set()
            return original_predict()

        matcher.predict = signalling_predict
        results: list = []

        def runner():
            results.append(session.run())

        thread = threading.Thread(target=runner)
        thread.start()
        assert started.wait(timeout=60)
        session.close()  # lands while run() holds or contends the lock
        thread.join(timeout=300)
        assert not thread.is_alive()
        # run() returned a coherent (possibly truncated) result, no crash.
        assert len(results) == 1
        assert session.closed
        # The loop stopped early OR finished its current pass -- either way
        # it never ran the full default iteration budget after the close.
        assert len(results[0].records) <= session.max_iterations
