"""CandidateStore drift + staleness regression tests.

Covers the cache layers that historically had no explicit invalidation:

* the per-pair view cache (a renamed column's cached view kept its old
  name until the store learned to drop the affected entries);
* the batched pair-growth path (per-pair ``np.append`` chains silently
  promoted the ``intp``/``int8`` arrays and were O(n^2));
* ``apply_delta``: the store-level incremental evolution contract.
"""

import numpy as np
import pytest

from repro.core.candidates import UNLABELED, CandidateStore
from repro.schema import (
    AttributeRef,
    DropColumn,
    RenameColumn,
    RetypeColumn,
    SchemaDelta,
    apply_delta,
)

from ..conftest import make_source_schema, make_target_schema


def ref(text: str) -> AttributeRef:
    return AttributeRef.parse(text)


@pytest.fixture()
def store() -> CandidateStore:
    return CandidateStore(make_source_schema(), make_target_schema())


class TestViewInvalidation:
    def test_views_are_cached(self, store):
        pair_id = store.pair_id(ref("Orders.qty"), ref("Transaction.quantity"))
        assert store.view(pair_id) is store.view(pair_id)

    def test_invalidate_views_drops_only_named_pairs(self, store):
        a = store.pair_id(ref("Orders.qty"), ref("Transaction.quantity"))
        b = store.pair_id(ref("Orders.disc"), ref("Transaction.tax_amount"))
        view_a, view_b = store.view(a), store.view(b)
        assert store.invalidate_views([a]) == 1
        assert store.view(a) is not view_a
        assert store.view(b) is view_b
        # Already-invalid entries are not double counted.
        assert store.invalidate_views([a, a]) == 1

    def test_invalidate_views_of_source(self, store):
        source = ref("Orders.qty")
        pair_ids = store.pairs_of_source(source)
        views = [store.view(int(i)) for i in pair_ids]
        other = store.view(store.pair_id(ref("Item.ean"), ref("Brand.brand_id")))
        assert store.invalidate_views_of_source(store.source_index(source)) == len(views)
        assert store.view(store.pair_id(ref("Item.ean"), ref("Brand.brand_id"))) is other

    def test_rename_delta_rebuilds_views_with_new_name(self, store):
        """Regression: cached views embed the attribute name at build time;
        a rename without explicit invalidation kept scoring the old text."""
        target = ref("Transaction.quantity")
        pair_id = store.pair_id(ref("Orders.qty"), target)
        assert store.view(pair_id).source_name == "qty"
        evolved, effect = apply_delta(
            store.source_schema,
            SchemaDelta((RenameColumn(ref("Orders.qty"), "quantity_sold"),)),
        )
        report = store.apply_delta(evolved, effect)
        assert report.views_invalidated > 0
        fresh = store.pair_id(ref("Orders.quantity_sold"), target)
        assert store.view(fresh).source_name == "quantity_sold"


class TestBatchedGrowth:
    def test_ensure_pairs_single_growth_and_dtypes(self, store):
        scores = np.zeros(store.num_pairs)
        store.prune(2, scores)
        missing = [
            (ref("Orders.qty"), ref("Transaction.tax_amount")),
            (ref("Orders.qty"), ref("Brand.brand_name")),
            (ref("Orders.qty"), ref("Transaction.tax_amount")),  # duplicate
        ]
        before = store.num_pairs
        ids = store.ensure_pairs(missing)
        assert store.num_pairs == before + 2
        assert ids[0] == ids[2]
        assert store.pair_source.dtype == np.intp
        assert store.pair_target.dtype == np.intp
        assert store.labels.dtype == np.int8
        assert store.label_explicit.dtype == bool
        # Idempotent: nothing grows the second time.
        assert store.ensure_pairs(missing) == ids
        assert store.num_pairs == before + 2

    def test_ensure_pair_matches_pair_id(self, store):
        pair = (ref("Item.ean"), ref("Product.european_article_number"))
        assert store.ensure_pair(*pair) == store.pair_id(*pair)

    def test_set_negatives_batched(self, store):
        source = ref("Orders.qty")
        targets = [ref("Transaction.tax_amount"), ref("Brand.brand_name")]
        store.set_negatives(source, targets)
        for target in targets:
            assert store.labels[store.pair_id(source, target)] != UNLABELED


class TestStoreApplyDelta:
    def _evolve(self, store, *operations):
        evolved, effect = apply_delta(store.source_schema, SchemaDelta(operations))
        return store.apply_delta(evolved, effect), evolved

    def test_rename_keeps_pairs_and_labels(self, store):
        source, target = ref("Orders.qty"), ref("Transaction.quantity")
        store.set_positive(source, target)
        pairs_before = store.num_pairs
        report, evolved = self._evolve(
            store, RenameColumn(source, "quantity_sold")
        )
        assert store.source_schema is evolved
        assert store.num_pairs == pairs_before
        assert report.pairs_dropped == 0
        assert report.labels_dropped == 0
        assert report.labels_preserved > 0
        new_ref = ref("Orders.quantity_sold")
        assert store.matched_target_of(new_ref) == target
        assert report.renamed_sources == [store.source_index(new_ref)]

    def test_drop_removes_pairs_and_counts_labels(self, store):
        source = ref("Orders.disc")
        store.set_positive(source, ref("Transaction.price_change_percentage"))
        per_source = store.num_targets
        pairs_before = store.num_pairs
        report, _ = self._evolve(store, DropColumn(source))
        assert report.pairs_dropped == per_source
        assert store.num_pairs == pairs_before - per_source
        assert report.labels_dropped > 0
        assert report.dropped_sources == [source]
        assert source not in store.source_refs
        # Remaining pair indices are consistent after the renumbering.
        for (s, t), i in store._pair_index.items():
            assert int(store.pair_source[i]) == s
            assert int(store.pair_target[i]) == t

    def test_retype_reports_source_without_touching_pairs(self, store):
        from repro.schema import DataType

        pairs_before = store.num_pairs
        report, _ = self._evolve(
            store, RetypeColumn(ref("Orders.qty"), DataType.STRING)
        )
        assert store.num_pairs == pairs_before
        assert report.retyped_sources == [store.source_index(ref("Orders.qty"))]
        assert report.affected_sources() == report.retyped_sources

    def test_add_full_product_appends_new_source_pairs(self, store):
        from repro.schema import AddColumn, Attribute, DataType

        evolved, effect = apply_delta(
            store.source_schema,
            SchemaDelta((AddColumn("Orders", Attribute("upc", DataType.STRING)),)),
        )
        report = store.apply_delta(evolved, effect, add_full_product=True)
        assert report.pairs_added == store.num_targets
        new_index = store.source_index(ref("Orders.upc"))
        assert report.added_sources == [new_index]
        assert len(store.pairs_of_source_index(new_index)) == store.num_targets

    def test_add_without_full_product_defers_to_retrieval(self, store):
        from repro.schema import AddColumn, Attribute, DataType

        evolved, effect = apply_delta(
            store.source_schema,
            SchemaDelta((AddColumn("Orders", Attribute("upc", DataType.STRING)),)),
        )
        report = store.apply_delta(evolved, effect)
        assert report.pairs_added == 0
        assert len(store.pairs_of_source(ref("Orders.upc"))) == 0
