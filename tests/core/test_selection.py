"""Tests for the active-learning attribute-selection strategies."""

import pytest

from repro.core import LeastConfidentAnchorSelection, RandomSelection, make_strategy
from repro.schema import AttributeRef


def refs(*names):
    return [AttributeRef.parse(name) for name in names]


class TestLeastConfidentAnchor:
    def test_default_anchor_set_is_keys(self, source_schema):
        strategy = LeastConfidentAnchorSelection(source_schema)
        assert AttributeRef("Orders", "order_id") in strategy.anchors
        assert AttributeRef("Orders", "item_id") in strategy.anchors
        assert AttributeRef("Item", "item_id") in strategy.anchors

    def test_first_call_takes_anchor_head(self, source_schema):
        strategy = LeastConfidentAnchorSelection(source_schema)
        unlabeled = source_schema.attribute_refs()
        chosen = strategy.select(unlabeled, {}, 1)
        assert chosen == [strategy.anchors[0]]

    def test_least_confident_anchor_after_first(self, source_schema):
        strategy = LeastConfidentAnchorSelection(source_schema)
        unlabeled = source_schema.attribute_refs()
        strategy.select(unlabeled, {}, 1)  # burn the first-iteration rule
        confidences = {ref: 0.9 for ref in unlabeled}
        least = strategy.anchors[1]
        confidences[least] = 0.01
        chosen = strategy.select(unlabeled, confidences, 1)
        assert chosen == [least]

    def test_falls_back_to_non_anchors_when_exhausted(self, source_schema):
        strategy = LeastConfidentAnchorSelection(source_schema)
        non_anchors = [
            ref
            for ref in source_schema.attribute_refs()
            if ref not in set(strategy.anchors)
        ]
        confidences = {ref: 0.5 for ref in non_anchors}
        confidences[non_anchors[2]] = 0.0
        chosen = strategy.select(non_anchors, confidences, 1)
        assert chosen == [non_anchors[2]]

    def test_user_provided_anchor_set(self, source_schema):
        custom = refs("Orders.qty")
        strategy = LeastConfidentAnchorSelection(source_schema, anchor_set=custom)
        chosen = strategy.select(source_schema.attribute_refs(), {}, 1)
        assert chosen == custom

    def test_empty_unlabeled(self, source_schema):
        strategy = LeastConfidentAnchorSelection(source_schema)
        assert strategy.select([], {}, 1) == []

    def test_n_greater_than_one(self, source_schema):
        strategy = LeastConfidentAnchorSelection(source_schema)
        chosen = strategy.select(source_schema.attribute_refs(), {}, 2)
        assert len(chosen) == 2

    def test_labeled_anchors_never_reselected(self, source_schema):
        """Anchors outside the unlabeled pool must be filtered out (the
        membership test the hoisted ``set(unlabeled)`` implements)."""
        strategy = LeastConfidentAnchorSelection(source_schema)
        unlabeled = [
            ref
            for ref in source_schema.attribute_refs()
            if ref != strategy.anchors[0]
        ]
        chosen = strategy.select(unlabeled, {}, len(unlabeled))
        assert strategy.anchors[0] not in chosen
        assert set(chosen) <= set(unlabeled)


class TestRandomSelection:
    def test_deterministic_per_seed(self, source_schema):
        unlabeled = source_schema.attribute_refs()
        a = RandomSelection(seed=5).select(unlabeled, {}, 3)
        b = RandomSelection(seed=5).select(unlabeled, {}, 3)
        assert a == b

    def test_no_duplicates(self, source_schema):
        unlabeled = source_schema.attribute_refs()
        chosen = RandomSelection(seed=0).select(unlabeled, {}, 5)
        assert len(chosen) == len(set(chosen)) == 5

    def test_n_capped_at_pool(self, source_schema):
        unlabeled = source_schema.attribute_refs()[:2]
        assert len(RandomSelection(seed=0).select(unlabeled, {}, 10)) == 2


class TestFactory:
    def test_factory_names(self, source_schema):
        assert isinstance(
            make_strategy("least_confident_anchor", source_schema),
            LeastConfidentAnchorSelection,
        )
        assert isinstance(make_strategy("random", source_schema), RandomSelection)
        with pytest.raises(ValueError):
            make_strategy("bogus", source_schema)
