"""Matcher-level tests of the retrieve-then-rerank candidate layer.

These cover the seams ISSUE 6 rewired: generator-driven pruning instead of
score-based blocking at init, feedback on pruned pairs, the informative
training subset fed to BERT fine-tuning, score/mask alignment across
prune -> ensure_pair -> re-prune, and candidate re-validation on model
hot-swap (the CLS retriever).
"""

import numpy as np
import pytest

from repro.core import (
    GroundTruthOracle,
    LearnedSchemaMatcher,
    LsmConfig,
    MatchingSession,
)
from repro.core.scoring import dtype_compatibility_mask
from repro.featurizers.bert import BertFeaturizerConfig
from repro.retrieval import FusedCandidateGenerator, RetrievalConfig
from repro.schema import AttributeRef


def _config(**overrides):
    return LsmConfig(
        bert=BertFeaturizerConfig(
            max_length=24, pretrain_epochs=1, update_epochs=1, batch_size=16, seed=0
        ),
        seed=0,
        **overrides,
    )


@pytest.fixture()
def pruned_matcher(source_schema, target_schema, tiny_artifacts):
    matcher = LearnedSchemaMatcher(
        source_schema,
        target_schema,
        config=_config(
            max_candidates_per_source=4,
            retrieval=RetrievalConfig(persist=False),
        ),
        artifacts=tiny_artifacts,
    )
    yield matcher
    matcher.close()


class TestGeneratorPruning:
    def test_pruning_shrinks_pair_set(self, pruned_matcher):
        store = pruned_matcher.store
        assert store.num_pairs < store.num_sources * store.num_targets
        assert store.num_pairs == store.num_sources * 4
        assert isinstance(pruned_matcher.generator, FusedCandidateGenerator)

    def test_stats_record_reduction(self, pruned_matcher):
        stats = pruned_matcher.retrieval_stats
        store = pruned_matcher.store
        assert stats.pairs_full_product == store.num_sources * store.num_targets
        assert stats.pairs_after_pruning == store.num_pairs
        assert stats.generations == 1

    def test_no_generator_without_blocking(
        self, source_schema, target_schema, tiny_artifacts
    ):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=_config(), artifacts=tiny_artifacts
        )
        assert matcher.generator is None
        store = matcher.store
        assert store.num_pairs == store.num_sources * store.num_targets
        matcher.close()

    def test_full_escape_hatch(self, source_schema, target_schema, tiny_artifacts):
        """generator="full" keeps the Cartesian product even with blocking on."""
        matcher = LearnedSchemaMatcher(
            source_schema,
            target_schema,
            config=_config(
                max_candidates_per_source=4,
                retrieval=RetrievalConfig(generator="full"),
            ),
            artifacts=tiny_artifacts,
        )
        store = matcher.store
        assert store.num_pairs == store.num_sources * store.num_targets
        matcher.close()

    def test_pruned_ground_truth_recall(
        self, source_schema, target_schema, tiny_artifacts, ground_truth
    ):
        """At k=6 (the tiny task's minimal full-recall k) the fused generator
        keeps every true match -- the recall property that makes blocking
        safe."""
        matcher = LearnedSchemaMatcher(
            source_schema,
            target_schema,
            config=_config(
                max_candidates_per_source=6,
                retrieval=RetrievalConfig(persist=False),
            ),
            artifacts=tiny_artifacts,
        )
        store = matcher.store
        for source, target in ground_truth.items():
            assert store.pair_id(source, target) is not None, (
                f"blocking dropped ground-truth pair {source} -> {target}"
            )
        matcher.close()


class TestFeedbackOnPrunedPairs:
    def test_record_rejected_on_pruned_pair_lands(self, pruned_matcher):
        """Regression (the ISSUE-6 headline bug): rejecting a suggestion the
        blocking step pruned must create the negative, not no-op."""
        store = pruned_matcher.store
        source = AttributeRef("Orders", "qty")
        pruned_away = [
            target
            for target in store.target_refs
            if store.pair_id(source, target) is None
        ]
        assert pruned_away, "need at least one pruned pair for the regression"
        target = pruned_away[0]
        pruned_matcher.record_rejected(source, [target])
        pair_id = store.pair_id(source, target)
        assert pair_id is not None
        assert store.labels[pair_id] == 0
        assert store.label_explicit[pair_id]

    def test_record_match_on_pruned_pair_lands(self, pruned_matcher):
        store = pruned_matcher.store
        source = AttributeRef("Orders", "qty")
        pruned_away = [
            target
            for target in store.target_refs
            if store.pair_id(source, target) is None
        ]
        target = pruned_away[0]
        pruned_matcher.record_match(source, target)
        assert store.matched_target_of(source) == target

    def test_predict_scores_restored_pair(self, pruned_matcher):
        """After ensure_pair re-adds a pruned pair, predict() must produce a
        score for it -- arrays, views and the dtype mask stay aligned."""
        store = pruned_matcher.store
        source = AttributeRef("Orders", "order_date")
        pruned_away = [
            target
            for target in store.target_refs
            if store.pair_id(source, target) is None
        ]
        target = pruned_away[0]
        pruned_matcher.record_rejected(source, [target])
        predictions = pruned_matcher.predict()
        assert predictions.scores.shape[0] == store.num_pairs
        mask = dtype_compatibility_mask(store)
        assert mask.shape[0] == store.num_pairs
        # The §IV-D invariant holds over the reshaped pair set.
        assert np.count_nonzero(predictions.scores[~mask]) == 0


class TestScoreAlignmentAcrossReshapes:
    def test_prune_ensure_reprune_stays_aligned(self, pruned_matcher, ground_truth):
        """prune -> ensure_pair -> re-prune (the PR-4 fingerprint path): a
        full session over a reshaping store completes with aligned scores."""
        matcher = pruned_matcher
        source = AttributeRef("Orders", "qty")
        store = matcher.store
        pruned_away = [
            t for t in store.target_refs if store.pair_id(source, t) is None
        ]
        matcher.record_rejected(source, pruned_away[:2])  # ensure_pair x2
        matcher.predict()
        # Re-apply the candidate sets: labeled pairs must survive.
        sets = matcher.generator.generate(matcher.config.max_candidates_per_source)
        store.apply_candidate_sets(sets.per_source)
        for t in pruned_away[:2]:
            assert store.pair_id(source, t) is not None
        predictions = matcher.predict()
        assert predictions.scores.shape[0] == store.num_pairs

    def test_session_with_blocking_completes_and_loses_no_labels(
        self, source_schema, target_schema, tiny_artifacts, ground_truth
    ):
        matcher = LearnedSchemaMatcher(
            source_schema,
            target_schema,
            config=_config(
                max_candidates_per_source=3,
                retrieval=RetrievalConfig(persist=False),
            ),
            artifacts=tiny_artifacts,
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        session = MatchingSession(matcher, oracle).run()
        assert session.completed
        # Every confirmed label is still present in the store at the end.
        store = matcher.store
        assert len(store.matched_sources()) == source_schema.num_attributes
        assert session.result.accuracy_against(ground_truth) == pytest.approx(1.0)


class TestInformativeTrainingSubset:
    def test_bert_update_sees_only_informative_pairs(
        self, source_schema, target_schema, tiny_artifacts, ground_truth, monkeypatch
    ):
        """Fine-tuning receives positives + explicit negatives, not the mass
        of sibling negatives ``set_positive`` implies."""
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=_config(), artifacts=tiny_artifacts
        )
        seen = []
        monkeypatch.setattr(
            matcher.bert_featurizer,
            "update",
            lambda views, labels: seen.append((list(views), list(labels))),
        )
        source = AttributeRef("Orders", "qty")
        rejected = AttributeRef("Transaction", "tax_amount")
        matcher.record_rejected(source, [rejected])
        matcher.record_match(source, ground_truth[source])
        matcher.predict()
        assert len(seen) == 1
        views, labels = seen[0]
        # 1 positive + 1 explicit negative; the other ~11 implied sibling
        # negatives of the confirmed source are excluded.
        assert sorted(labels) == [0, 1]
        refs = {(v.source_ref, v.target_ref) for v in views}
        assert (source, ground_truth[source]) in refs
        assert (source, rejected) in refs
        matcher.close()


class TestHotSwapRefresh:
    def test_cls_refresh_revalidates_candidates(
        self, source_schema, target_schema, tiny_artifacts, monkeypatch
    ):
        """With the model-sensitive CLS retriever on, a BERT update bumps the
        model version, the index is re-encoded and candidate sets re-applied."""
        matcher = LearnedSchemaMatcher(
            source_schema,
            target_schema,
            config=_config(
                max_candidates_per_source=4,
                retrieval=RetrievalConfig(use_cls=True, persist=False),
                update_bert_every=1,
            ),
            artifacts=tiny_artifacts,
        )
        assert matcher.generator is not None
        assert matcher.generator.model_sensitive
        names = {r.name for r in matcher.generator.retrievers}
        assert "cls" in names
        generations_before = matcher.retrieval_stats.generations
        version_before = matcher.bert_featurizer.model_version

        matcher.record_match(
            AttributeRef("Orders", "qty"), AttributeRef("Transaction", "quantity")
        )
        matcher.predict()  # triggers a BERT update -> hot swap -> refresh

        assert matcher.bert_featurizer.model_version > version_before
        assert matcher.retrieval_stats.refreshes >= 1
        assert matcher.retrieval_stats.generations > generations_before
        # Candidate sets were re-applied; the pair set is still pruned and
        # the labeled pairs survived.
        store = matcher.store
        assert store.matched_target_of(AttributeRef("Orders", "qty")) is not None
        assert store.num_pairs < store.num_sources * store.num_targets
        matcher.close()

    def test_no_refresh_without_model_sensitive_retriever(self, pruned_matcher):
        assert pruned_matcher.generator.model_sensitive is False
        pruned_matcher.record_match(
            AttributeRef("Orders", "qty"), AttributeRef("Transaction", "quantity")
        )
        pruned_matcher.predict()
        assert pruned_matcher.retrieval_stats.refreshes == 0
