"""Tests for the dtype filter and new-entity penalty."""

import numpy as np
import pytest

from repro.core import CandidateStore, ScoreAdjuster, entity_penalty
from repro.core.scoring import dtype_compatibility_mask
from repro.schema import AttributeRef


@pytest.fixture()
def store(source_schema, target_schema):
    return CandidateStore(source_schema, target_schema)


class TestEntityPenaltyFormula:
    def test_zero_distance_no_penalty(self):
        assert entity_penalty(0) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        values = [entity_penalty(d) for d in range(6)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_paper_formula(self):
        assert entity_penalty(1) == pytest.approx(1.0 / (1.0 + np.log(2.0)))


class TestDtypeFilter:
    def test_incompatible_pairs_zeroed(self, store, target_schema):
        adjuster = ScoreAdjuster(store, target_schema, apply_entity_penalty=False)
        scores = np.ones(store.num_pairs)
        adjusted = adjuster.adjust(scores)
        # qty (decimal) vs product_name (string) must be zeroed.
        pair_id = store.pair_id(
            AttributeRef("Orders", "qty"), AttributeRef("Product", "product_name")
        )
        assert adjusted[pair_id] == 0.0
        # qty vs quantity (decimal) survives.
        pair_id = store.pair_id(
            AttributeRef("Orders", "qty"), AttributeRef("Transaction", "quantity")
        )
        assert adjusted[pair_id] == 1.0

    def test_filter_can_be_disabled(self, store, target_schema):
        adjuster = ScoreAdjuster(
            store, target_schema, apply_dtype_filter=False, apply_entity_penalty=False
        )
        adjusted = adjuster.adjust(np.ones(store.num_pairs))
        assert (adjusted == 1.0).all()

    def test_input_not_mutated(self, store, target_schema):
        adjuster = ScoreAdjuster(store, target_schema)
        scores = np.ones(store.num_pairs)
        adjuster.adjust(scores)
        assert (scores == 1.0).all()

    def test_mask_recomputed_after_ensure_pair(self, store, target_schema, rng):
        adjuster = ScoreAdjuster(store, target_schema, apply_entity_penalty=False)
        adjuster.adjust(np.ones(store.num_pairs))
        store.prune(2, rng.random(store.num_pairs))
        store.ensure_pair(
            AttributeRef("Orders", "qty"), AttributeRef("Brand", "brand_name")
        )
        adjusted = adjuster.adjust(np.ones(store.num_pairs))
        assert adjusted.shape[0] == store.num_pairs

    def test_mask_recomputed_after_count_preserving_mutation(
        self, store, target_schema, rng
    ):
        """Regression: the mask cache was keyed on pair *count*, so a
        mutation that drops one pair and re-adds another (same count, shifted
        row layout) silently zeroed the wrong candidates."""
        adjuster = ScoreAdjuster(store, target_schema, apply_entity_penalty=False)
        adjuster.adjust(np.ones(store.num_pairs))  # populate the mask cache
        stale_mask = adjuster._current_dtype_mask().copy()
        before = store.num_pairs

        all_pairs = set(zip(store.pair_source.tolist(), store.pair_target.tolist()))
        store.prune(store.num_targets - 1, rng.random(store.num_pairs))
        kept = set(zip(store.pair_source.tolist(), store.pair_target.tolist()))
        for source_index, target_index in sorted(all_pairs - kept):
            store.ensure_pair(
                store.source_refs[source_index], store.target_refs[target_index]
            )
        assert store.num_pairs == before  # same count...
        fresh_mask = dtype_compatibility_mask(store)
        assert not np.array_equal(stale_mask, fresh_mask)  # ...different layout

        adjusted = adjuster.adjust(np.ones(store.num_pairs))
        np.testing.assert_array_equal(adjusted, np.where(fresh_mask, 1.0, 0.0))


class TestEntityPenalty:
    def test_no_penalty_without_matches(self, store, target_schema):
        adjuster = ScoreAdjuster(store, target_schema, apply_dtype_filter=False)
        adjusted = adjuster.adjust(np.ones(store.num_pairs))
        assert (adjusted == 1.0).all()

    def test_unmatched_entities_penalised_by_distance(self, store, target_schema):
        adjuster = ScoreAdjuster(store, target_schema, apply_dtype_filter=False)
        store.set_positive(
            AttributeRef("Orders", "qty"), AttributeRef("Transaction", "quantity")
        )
        adjusted = adjuster.adjust(np.ones(store.num_pairs))
        # Transaction is matched: factor 1.  Product at distance 1, Brand 2.
        in_matched = store.pair_id(
            AttributeRef("Orders", "disc"),
            AttributeRef("Transaction", "price_change_percentage"),
        )
        one_hop = store.pair_id(
            AttributeRef("Orders", "disc"), AttributeRef("Product", "product_id")
        )
        two_hops = store.pair_id(
            AttributeRef("Orders", "disc"), AttributeRef("Brand", "brand_id")
        )
        assert adjusted[in_matched] == pytest.approx(1.0)
        assert adjusted[one_hop] == pytest.approx(entity_penalty(1))
        assert adjusted[two_hops] == pytest.approx(entity_penalty(2))
        assert adjusted[in_matched] > adjusted[one_hop] > adjusted[two_hops]
