"""Tests for the candidate-pair store."""

import numpy as np
import pytest

from repro.core import NEGATIVE, POSITIVE, UNLABELED, CandidateStore
from repro.schema import AttributeRef


@pytest.fixture()
def store(source_schema, target_schema):
    return CandidateStore(source_schema, target_schema)


class TestPreparation:
    def test_cartesian_product(self, store, source_schema, target_schema):
        assert store.num_pairs == source_schema.num_attributes * target_schema.num_attributes
        assert store.num_sources == source_schema.num_attributes
        assert store.num_targets == target_schema.num_attributes

    def test_all_labels_start_unlabeled(self, store):
        assert (store.labels == UNLABELED).all()

    def test_pair_lookup(self, store):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "quantity")
        pair_id = store.pair_id(source, target)
        assert pair_id is not None
        view = store.view(pair_id)
        assert view.source_ref == source
        assert view.target_ref == target

    def test_pairs_of_source(self, store, target_schema):
        pairs = store.pairs_of_source(AttributeRef("Orders", "qty"))
        assert pairs.size == target_schema.num_attributes


class TestLabels:
    def test_set_positive_marks_others_negative(self, store):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "quantity")
        store.set_positive(source, target)
        pair_ids = store.pairs_of_source(source)
        labels = store.labels[pair_ids]
        assert (labels == POSITIVE).sum() == 1
        assert (labels == NEGATIVE).sum() == pair_ids.size - 1
        assert store.matched_target_of(source) == target

    def test_set_negative(self, store):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "tax_amount")
        store.set_negative(source, target)
        assert store.labels[store.pair_id(source, target)] == NEGATIVE

    def test_set_negative_never_overrides_positive(self, store):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "quantity")
        store.set_positive(source, target)
        store.set_negative(source, target)
        assert store.labels[store.pair_id(source, target)] == POSITIVE

    def test_repositioning_a_match(self, store):
        source = AttributeRef("Orders", "qty")
        store.set_positive(source, AttributeRef("Transaction", "quantity"))
        store.set_positive(source, AttributeRef("Transaction", "tax_amount"))
        assert store.matched_target_of(source) == AttributeRef("Transaction", "tax_amount")
        assert len(store.matched_sources()) == 1

    def test_matched_and_unmatched_partition(self, store, source_schema):
        source = AttributeRef("Orders", "qty")
        store.set_positive(source, AttributeRef("Transaction", "quantity"))
        matched = store.matched_sources()
        unmatched = store.unmatched_sources()
        assert matched == [source]
        assert len(unmatched) == source_schema.num_attributes - 1
        assert source not in unmatched

    def test_matched_target_entities(self, store):
        store.set_positive(
            AttributeRef("Orders", "qty"), AttributeRef("Transaction", "quantity")
        )
        assert store.matched_target_entities() == {"Transaction"}


class TestPruning:
    def test_prune_keeps_top_per_source(self, store, rng):
        scores = rng.random(store.num_pairs)
        store.prune(3, scores)
        for source_index in range(store.num_sources):
            assert (store.pair_source == source_index).sum() == 3

    def test_prune_retains_labeled_pairs(self, store, rng):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "quantity")
        pair_id = store.pair_id(source, target)
        scores = np.zeros(store.num_pairs)
        scores[pair_id] = -1.0  # worst score: would be pruned if unlabeled
        store.set_positive(source, target)
        store.prune(2, scores)
        assert store.pair_id(source, target) is not None
        assert store.matched_target_of(source) == target

    def test_prune_noop_when_keep_exceeds_targets(self, store, rng):
        before = store.num_pairs
        store.prune(10_000, rng.random(store.num_pairs))
        assert store.num_pairs == before

    def test_prune_score_shape_validated(self, store):
        with pytest.raises(ValueError):
            store.prune(3, np.zeros(3))

    def test_ensure_pair_restores_pruned_pair(self, store, rng):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Brand", "brand_name")
        scores = rng.random(store.num_pairs)
        scores[store.pair_id(source, target)] = -10.0
        store.prune(2, scores)
        assert store.pair_id(source, target) is None
        pair_id = store.ensure_pair(source, target)
        assert store.pair_id(source, target) == pair_id
        assert store.labels[pair_id] == UNLABELED

    def test_set_positive_after_pruning(self, store, rng):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Brand", "brand_name")
        scores = rng.random(store.num_pairs)
        scores[store.pair_id(source, target)] = -10.0
        store.prune(2, scores)
        store.set_positive(source, target)  # must not raise
        assert store.matched_target_of(source) == target

    def test_set_negative_after_pruning(self, store, rng):
        """Regression: rejecting a pair blocking pruned used to no-op
        silently, dropping the user's feedback on the floor."""
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Brand", "brand_name")
        scores = rng.random(store.num_pairs)
        scores[store.pair_id(source, target)] = -10.0
        store.prune(2, scores)
        assert store.pair_id(source, target) is None  # really was pruned
        store.set_negative(source, target)
        pair_id = store.pair_id(source, target)
        assert pair_id is not None
        assert store.labels[pair_id] == NEGATIVE
        assert store.label_explicit[pair_id]

    def test_negative_feedback_survives_repruning(self, store, rng):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Brand", "brand_name")
        scores = rng.random(store.num_pairs)
        scores[store.pair_id(source, target)] = -10.0
        store.prune(2, scores)
        store.set_negative(source, target)
        # A later pruning pass (e.g. hot-swap re-validation) must keep it.
        store.apply_candidate_sets(
            [np.array([0, 1]) for _ in range(store.num_sources)]
        )
        pair_id = store.pair_id(source, target)
        assert pair_id is not None
        assert store.labels[pair_id] == NEGATIVE


class TestLabelProvenance:
    def test_explicit_flags(self, store):
        source = AttributeRef("Orders", "qty")
        store.set_negative(source, AttributeRef("Transaction", "tax_amount"))
        store.set_positive(source, AttributeRef("Transaction", "quantity"))
        explicit = store.explicit_ids()
        # Exactly the direct actions: one rejection + one acceptance.
        assert explicit.size == 2
        labels = sorted(store.labels[explicit])
        assert labels == [NEGATIVE, POSITIVE]

    def test_implied_negatives_not_informative(self, store):
        source = AttributeRef("Orders", "qty")
        store.set_positive(source, AttributeRef("Transaction", "quantity"))
        informative = store.informative_ids()
        assert informative.size == 1  # just the positive
        assert (store.labels == NEGATIVE).sum() == store.num_targets - 1

    def test_informative_includes_explicit_negatives(self, store):
        store.set_negative(
            AttributeRef("Orders", "qty"), AttributeRef("Transaction", "tax_amount")
        )
        store.set_positive(
            AttributeRef("Orders", "qty"), AttributeRef("Transaction", "quantity")
        )
        store.set_positive(
            AttributeRef("Item", "ean"),
            AttributeRef("Product", "european_article_number"),
        )
        informative = store.informative_ids()
        assert informative.size == 3  # 2 positives + 1 explicit negative

    def test_explicit_flag_survives_pruning(self, store, rng):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "tax_amount")
        store.set_negative(source, target)
        store.prune(2, rng.random(store.num_pairs))
        pair_id = store.pair_id(source, target)
        assert store.label_explicit[pair_id]
        assert pair_id in store.informative_ids()


class TestSourceGroups:
    """The cached per-source pair-id lists must track every reshape.

    Regression: the prediction rank loop used to rescan ``flatnonzero``
    per source; the cache replacing it must be invalidated by pruning and
    pair re-addition or ranking would silently use stale pair ids.
    """

    def _assert_groups_consistent(self, store):
        seen = 0
        for source_index in range(store.num_sources):
            pair_ids = store.pairs_of_source_index(source_index)
            assert (store.pair_source[pair_ids] == source_index).all()
            seen += pair_ids.size
        assert seen == store.num_pairs

    def test_groups_cover_initial_product(self, store):
        self._assert_groups_consistent(store)

    def test_groups_invalidated_by_prune(self, store, rng):
        store.pairs_of_source_index(0)  # populate the cache
        store.prune(3, rng.random(store.num_pairs))
        self._assert_groups_consistent(store)
        assert store.pairs_of_source_index(0).size == 3

    def test_groups_invalidated_by_ensure_pair(self, store, rng):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Brand", "brand_name")
        scores = rng.random(store.num_pairs)
        scores[store.pair_id(source, target)] = -10.0
        store.prune(2, scores)
        store.pairs_of_source_index(0)  # populate the cache
        pair_id = store.ensure_pair(source, target)
        self._assert_groups_consistent(store)
        assert pair_id in store.pairs_of_source(source)

    def test_groups_invalidated_by_apply_candidate_sets(self, store):
        store.pairs_of_source_index(0)  # populate the cache
        store.apply_candidate_sets(
            [np.array([0, 2, 4]) for _ in range(store.num_sources)]
        )
        self._assert_groups_consistent(store)
        for source_index in range(store.num_sources):
            assert store.pairs_of_source_index(source_index).size == 3

    def test_groups_agree_with_flatnonzero(self, store, rng):
        store.prune(4, rng.random(store.num_pairs))
        for source_index in range(store.num_sources):
            expected = np.flatnonzero(store.pair_source == source_index)
            np.testing.assert_array_equal(
                np.sort(store.pairs_of_source_index(source_index)), expected
            )


class TestApplyCandidateSets:
    def test_prunes_to_allowed_targets(self, store):
        added, removed = store.apply_candidate_sets(
            [np.array([0, 1]) for _ in range(store.num_sources)]
        )
        assert added == 0
        assert removed == store.num_sources * (store.num_targets - 2)
        assert store.num_pairs == store.num_sources * 2

    def test_readds_missing_pairs(self, store):
        store.apply_candidate_sets([np.array([0]) for _ in range(store.num_sources)])
        added, removed = store.apply_candidate_sets(
            [np.array([0, 1, 2]) for _ in range(store.num_sources)]
        )
        assert removed == 0
        assert added == store.num_sources * 2
        assert store.num_pairs == store.num_sources * 3
        self_check = [
            store.pairs_of_source_index(i).size for i in range(store.num_sources)
        ]
        assert self_check == [3] * store.num_sources

    def test_labeled_pairs_survive(self, store):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "quantity")
        store.set_positive(source, target)
        target_index = store.target_index(target)
        disallowed = np.array([t for t in range(3) if t != target_index])
        store.apply_candidate_sets(
            [disallowed for _ in range(store.num_sources)]
        )
        assert store.matched_target_of(source) == target
        # The implied sibling negatives survive too (they are labeled).
        pair_ids = store.pairs_of_source(source)
        assert (store.labels[pair_ids] != UNLABELED).all()

    def test_misaligned_sets_rejected(self, store):
        with pytest.raises(ValueError):
            store.apply_candidate_sets([np.array([0])])

    def test_roundtrip_is_stable(self, store):
        sets = [np.array([1, 3, 5]) for _ in range(store.num_sources)]
        store.apply_candidate_sets(sets)
        added, removed = store.apply_candidate_sets(sets)
        assert (added, removed) == (0, 0)
