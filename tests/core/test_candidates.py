"""Tests for the candidate-pair store."""

import numpy as np
import pytest

from repro.core import NEGATIVE, POSITIVE, UNLABELED, CandidateStore
from repro.schema import AttributeRef


@pytest.fixture()
def store(source_schema, target_schema):
    return CandidateStore(source_schema, target_schema)


class TestPreparation:
    def test_cartesian_product(self, store, source_schema, target_schema):
        assert store.num_pairs == source_schema.num_attributes * target_schema.num_attributes
        assert store.num_sources == source_schema.num_attributes
        assert store.num_targets == target_schema.num_attributes

    def test_all_labels_start_unlabeled(self, store):
        assert (store.labels == UNLABELED).all()

    def test_pair_lookup(self, store):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "quantity")
        pair_id = store.pair_id(source, target)
        assert pair_id is not None
        view = store.view(pair_id)
        assert view.source_ref == source
        assert view.target_ref == target

    def test_pairs_of_source(self, store, target_schema):
        pairs = store.pairs_of_source(AttributeRef("Orders", "qty"))
        assert pairs.size == target_schema.num_attributes


class TestLabels:
    def test_set_positive_marks_others_negative(self, store):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "quantity")
        store.set_positive(source, target)
        pair_ids = store.pairs_of_source(source)
        labels = store.labels[pair_ids]
        assert (labels == POSITIVE).sum() == 1
        assert (labels == NEGATIVE).sum() == pair_ids.size - 1
        assert store.matched_target_of(source) == target

    def test_set_negative(self, store):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "tax_amount")
        store.set_negative(source, target)
        assert store.labels[store.pair_id(source, target)] == NEGATIVE

    def test_set_negative_never_overrides_positive(self, store):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "quantity")
        store.set_positive(source, target)
        store.set_negative(source, target)
        assert store.labels[store.pair_id(source, target)] == POSITIVE

    def test_repositioning_a_match(self, store):
        source = AttributeRef("Orders", "qty")
        store.set_positive(source, AttributeRef("Transaction", "quantity"))
        store.set_positive(source, AttributeRef("Transaction", "tax_amount"))
        assert store.matched_target_of(source) == AttributeRef("Transaction", "tax_amount")
        assert len(store.matched_sources()) == 1

    def test_matched_and_unmatched_partition(self, store, source_schema):
        source = AttributeRef("Orders", "qty")
        store.set_positive(source, AttributeRef("Transaction", "quantity"))
        matched = store.matched_sources()
        unmatched = store.unmatched_sources()
        assert matched == [source]
        assert len(unmatched) == source_schema.num_attributes - 1
        assert source not in unmatched

    def test_matched_target_entities(self, store):
        store.set_positive(
            AttributeRef("Orders", "qty"), AttributeRef("Transaction", "quantity")
        )
        assert store.matched_target_entities() == {"Transaction"}


class TestPruning:
    def test_prune_keeps_top_per_source(self, store, rng):
        scores = rng.random(store.num_pairs)
        store.prune(3, scores)
        for source_index in range(store.num_sources):
            assert (store.pair_source == source_index).sum() == 3

    def test_prune_retains_labeled_pairs(self, store, rng):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Transaction", "quantity")
        pair_id = store.pair_id(source, target)
        scores = np.zeros(store.num_pairs)
        scores[pair_id] = -1.0  # worst score: would be pruned if unlabeled
        store.set_positive(source, target)
        store.prune(2, scores)
        assert store.pair_id(source, target) is not None
        assert store.matched_target_of(source) == target

    def test_prune_noop_when_keep_exceeds_targets(self, store, rng):
        before = store.num_pairs
        store.prune(10_000, rng.random(store.num_pairs))
        assert store.num_pairs == before

    def test_prune_score_shape_validated(self, store):
        with pytest.raises(ValueError):
            store.prune(3, np.zeros(3))

    def test_ensure_pair_restores_pruned_pair(self, store, rng):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Brand", "brand_name")
        scores = rng.random(store.num_pairs)
        scores[store.pair_id(source, target)] = -10.0
        store.prune(2, scores)
        assert store.pair_id(source, target) is None
        pair_id = store.ensure_pair(source, target)
        assert store.pair_id(source, target) == pair_id
        assert store.labels[pair_id] == UNLABELED

    def test_set_positive_after_pruning(self, store, rng):
        source = AttributeRef("Orders", "qty")
        target = AttributeRef("Brand", "brand_name")
        scores = rng.random(store.num_pairs)
        scores[store.pair_id(source, target)] = -10.0
        store.prune(2, scores)
        store.set_positive(source, target)  # must not raise
        assert store.matched_target_of(source) == target
