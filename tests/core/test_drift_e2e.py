"""End-to-end schema-drift tests on the tiny synthetic task.

Drive real deltas through a live matcher/session (full pipeline, small
model) and pin the incremental-rematch contract: labels survive renames,
renamed columns are re-encoded, retypes refresh the dtype mask, unaffected
pairs are served from the fingerprint score cache, and the incremental
path lands on the same matches as a from-scratch rebuild.
"""

import numpy as np
import pytest

from repro.core import (
    GroundTruthOracle,
    LearnedSchemaMatcher,
    LsmConfig,
    MatchingSession,
)
from repro.core.scoring import dtype_compatibility_mask
from repro.datasets import DriftConfig, generate_drift_sequence
from repro.featurizers.bert import BertFeaturizerConfig
from repro.schema import (
    AttributeRef,
    DataType,
    DropColumn,
    RenameColumn,
    RetypeColumn,
    SchemaDelta,
    remap_ground_truth,
)


def ref(text: str) -> AttributeRef:
    return AttributeRef.parse(text)


@pytest.fixture()
def config():
    return LsmConfig(
        bert=BertFeaturizerConfig(
            max_length=24, pretrain_epochs=1, update_epochs=1, batch_size=16, seed=0
        ),
        update_bert_every=10**9,  # freeze the model: isolate drift effects
        seed=0,
    )


@pytest.fixture()
def matcher(source_schema, target_schema, config, tiny_artifacts):
    with LearnedSchemaMatcher(
        source_schema, target_schema, config=config, artifacts=tiny_artifacts
    ) as m:
        yield m


class TestRenameDrift:
    def test_labeled_rename_survives_and_reencodes(self, matcher, ground_truth):
        matcher.predict()
        source, target = ref("Orders.qty"), ground_truth[ref("Orders.qty")]
        matcher.record_match(source, target)

        report = matcher.apply_delta(
            SchemaDelta((RenameColumn(source, "quantity_sold"),))
        )
        new_ref = ref("Orders.quantity_sold")
        # The label rode the rename: still matched, under the new ref.
        assert matcher.store.matched_target_of(new_ref) == target
        assert report.store.labels_preserved > 0
        assert report.store.labels_dropped == 0
        # The renamed column's stale encodings were dropped for re-encoding.
        assert sum(report.featurizer_entries_dropped.values()) > 0
        assert report.store.views_invalidated > 0

        predictions = matcher.predict()
        # Matched sources stay out of the suggestion set; everything else
        # is ranked against the new name without errors.
        assert new_ref not in predictions.suggestions
        assert source not in predictions.suggestions
        assert matcher.result().target_for(new_ref) == target

    def test_rescore_only_touches_drifted_pairs(self, matcher):
        matcher.predict()
        matcher.apply_delta(
            SchemaDelta((RenameColumn(ref("Orders.qty"), "quantity_sold"),))
        )
        matcher.predict()
        per_source = len(matcher.store.pairs_of_source(ref("Orders.quantity_sold")))
        assert matcher.drift_stats.pairs_rescored <= per_source
        assert matcher.drift_stats.pairs_reused > 0

    def test_drop_only_delta_reruns_nothing(self, matcher):
        matcher.predict()
        matcher.apply_delta(SchemaDelta((DropColumn(ref("Orders.disc")),)))
        matcher.predict()
        assert matcher.drift_stats.pairs_rescored == 0
        assert matcher.drift_stats.pairs_reused > 0
        assert not matcher.source_schema.has_attribute(ref("Orders.disc"))


class TestRetypeDrift:
    def test_retype_refreshes_dtype_mask(self, matcher):
        matcher.predict()
        mask_before = dtype_compatibility_mask(matcher.store)
        # DECIMAL -> DATE moves qty out of the numeric family: its numeric
        # targets become incompatible and must now be zeroed.
        report = matcher.apply_delta(
            SchemaDelta((RetypeColumn(ref("Orders.qty"), DataType.DATE),))
        )
        assert report.store.retyped_sources
        mask_after = dtype_compatibility_mask(matcher.store)
        pair_id = matcher.store.pair_id(
            ref("Orders.qty"), ref("Transaction.quantity")
        )
        assert bool(mask_before[pair_id]) is True
        assert bool(mask_after[pair_id]) is False

        predictions = matcher.predict()
        incompatible = predictions.scores[~mask_after]
        assert incompatible.size > 0
        assert np.count_nonzero(incompatible) == 0


class TestIncrementalParity:
    @pytest.mark.parametrize("retrieval_k", [None, 6])
    def test_matches_fresh_matcher_after_drift(
        self, source_schema, target_schema, config, tiny_artifacts, retrieval_k
    ):
        from dataclasses import replace

        if retrieval_k is not None:
            from repro.retrieval import RetrievalConfig

            config = replace(
                config,
                max_candidates_per_source=retrieval_k,
                retrieval=RetrievalConfig(persist=False),
            )
        deltas = generate_drift_sequence(
            source_schema, DriftConfig(num_deltas=2, ops_per_delta=2, seed=5)
        )
        with LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        ) as incremental:
            incremental.predict()
            for delta in deltas:
                incremental.apply_delta(delta)
            evolved = incremental.source_schema
            incremental_predictions = incremental.predict()
            incremental_top1 = {
                source: ranked[0][0]
                for source, ranked in incremental_predictions.suggestions.items()
                if ranked
            }

        with LearnedSchemaMatcher(
            evolved, target_schema, config=config, artifacts=tiny_artifacts
        ) as fresh:
            fresh_predictions = fresh.predict()
            fresh_top1 = {
                source: ranked[0][0]
                for source, ranked in fresh_predictions.suggestions.items()
                if ranked
            }

        assert incremental_top1 == fresh_top1


class TestDriftStats:
    def test_counters_and_metrics_registration(self, matcher):
        matcher.predict()
        matcher.apply_delta(
            SchemaDelta(
                (
                    RenameColumn(ref("Orders.qty"), "quantity_sold"),
                    RetypeColumn(ref("Orders.order_date"), DataType.STRING),
                )
            )
        )
        matcher.predict()
        stats = matcher.drift_stats.as_dict()
        assert stats["deltas_applied"] == 1
        assert stats["columns_renamed"] == 1
        assert stats["columns_retyped"] == 1
        assert stats["pairs_rescored"] + stats["pairs_reused"] > 0
        assert "drift" in matcher.metrics.snapshot()


class TestSessionDrift:
    def test_session_completes_after_mid_run_drift(
        self, source_schema, target_schema, config, tiny_artifacts, ground_truth
    ):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        delta = SchemaDelta(
            (
                RenameColumn(ref("Orders.qty"), "quantity_sold"),
                RenameColumn(ref("Item.ean"), "barcode"),
            )
        )
        with MatchingSession(matcher, oracle) as session:
            session.predict()
            report = session.apply_delta(delta)
            result = session.run()
        assert result.completed
        remapped = remap_ground_truth(ground_truth, report.effect)
        assert result.result.accuracy_against(remapped) == pytest.approx(1.0)

    def test_oracle_truth_follows_rename(self, ground_truth, target_schema):
        oracle = GroundTruthOracle(ground_truth, target_schema)
        from repro.schema import apply_delta as apply_schema_delta
        from ..conftest import make_source_schema

        _, effect = apply_schema_delta(
            make_source_schema(),
            SchemaDelta((RenameColumn(ref("Orders.qty"), "quantity_sold"),)),
        )
        oracle.apply_drift(effect)
        assert oracle.has_truth(ref("Orders.quantity_sold"))
        assert not oracle.has_truth(ref("Orders.qty"))
        assert oracle.label(ref("Orders.quantity_sold")) == ground_truth[
            ref("Orders.qty")
        ]
