"""Tests for the simulated user (ground-truth oracle, optionally noisy)."""

import pytest

from repro.core import GroundTruthOracle
from repro.schema import AttributeRef


class TestCleanOracle:
    def test_label_returns_truth(self, ground_truth, target_schema):
        oracle = GroundTruthOracle(ground_truth, target_schema)
        source = AttributeRef("Orders", "qty")
        assert oracle.label(source) == ground_truth[source]

    def test_label_unknown_source_raises(self, ground_truth, target_schema):
        oracle = GroundTruthOracle(ground_truth, target_schema)
        with pytest.raises(KeyError):
            oracle.label(AttributeRef("Nope", "nope"))

    def test_review_picks_correct_suggestion(self, ground_truth, target_schema):
        oracle = GroundTruthOracle(ground_truth, target_schema)
        source = AttributeRef("Orders", "qty")
        truth = ground_truth[source]
        wrong = AttributeRef("Transaction", "tax_amount")
        assert oracle.review(source, [wrong, truth]) == truth
        assert oracle.review(source, [wrong]) is None

    def test_is_correct_checks_true_truth(self, ground_truth, target_schema):
        oracle = GroundTruthOracle(ground_truth, target_schema)
        source = AttributeRef("Orders", "qty")
        assert oracle.is_correct(source, ground_truth[source])
        assert not oracle.is_correct(source, AttributeRef("Brand", "brand_id"))

    def test_zero_noise_has_no_corruption(self, ground_truth, target_schema):
        oracle = GroundTruthOracle(ground_truth, target_schema, noise_rate=0.0)
        assert oracle.num_corrupted() == 0


class TestNoisyOracle:
    def test_requires_embeddings(self, ground_truth, target_schema):
        with pytest.raises(ValueError):
            GroundTruthOracle(ground_truth, target_schema, noise_rate=0.2)

    def test_invalid_rate(self, ground_truth, target_schema, tiny_artifacts):
        with pytest.raises(ValueError):
            GroundTruthOracle(
                ground_truth,
                target_schema,
                noise_rate=1.5,
                embeddings=tiny_artifacts.embeddings,
            )

    def test_corruption_rate_roughly_matches(self, ground_truth, target_schema, tiny_artifacts):
        total_corrupted = 0
        for seed in range(20):
            oracle = GroundTruthOracle(
                ground_truth,
                target_schema,
                noise_rate=0.3,
                embeddings=tiny_artifacts.embeddings,
                seed=seed,
            )
            total_corrupted += oracle.num_corrupted()
        rate = total_corrupted / (20 * len(ground_truth))
        assert 0.15 < rate < 0.45

    def test_corruption_never_equals_truth(self, ground_truth, target_schema, tiny_artifacts):
        oracle = GroundTruthOracle(
            ground_truth,
            target_schema,
            noise_rate=0.9,
            embeddings=tiny_artifacts.embeddings,
            seed=1,
        )
        for source, believed in oracle.belief.items():
            if believed != oracle.truth[source]:
                assert target_schema.has_attribute(believed)

    def test_belief_consistency_between_review_and_label(
        self, ground_truth, target_schema, tiny_artifacts
    ):
        oracle = GroundTruthOracle(
            ground_truth,
            target_schema,
            noise_rate=0.9,
            embeddings=tiny_artifacts.embeddings,
            seed=2,
        )
        for source in ground_truth:
            believed = oracle.label(source)
            # The same (possibly wrong) belief drives reviewing.
            assert oracle.review(source, [believed]) == believed

    def test_deterministic_per_seed(self, ground_truth, target_schema, tiny_artifacts):
        make = lambda: GroundTruthOracle(
            ground_truth,
            target_schema,
            noise_rate=0.5,
            embeddings=tiny_artifacts.embeddings,
            seed=7,
        )
        assert make().belief == make().belief
