"""Integration-grade tests for the matcher and interactive session on the
tiny synthetic task (full pipeline, small model)."""

import numpy as np
import pytest

from repro.core import (
    GroundTruthOracle,
    LearnedSchemaMatcher,
    LsmConfig,
    MatchingSession,
    manual_labeling_curve,
)
from repro.featurizers.bert import BertFeaturizerConfig
from repro.schema import AttributeRef


@pytest.fixture()
def config():
    return LsmConfig(
        bert=BertFeaturizerConfig(
            max_length=24, pretrain_epochs=2, update_epochs=1, batch_size=16, seed=0
        ),
        seed=0,
    )


@pytest.fixture()
def matcher(source_schema, target_schema, config, tiny_artifacts):
    return LearnedSchemaMatcher(
        source_schema, target_schema, config=config, artifacts=tiny_artifacts
    )


class TestMatcherPredict:
    def test_suggestions_cover_unmatched_sources(self, matcher, source_schema):
        predictions = matcher.predict()
        assert set(predictions.suggestions) == set(source_schema.attribute_refs())
        for ranked in predictions.suggestions.values():
            assert 1 <= len(ranked) <= matcher.config.top_k
            scores = [score for _, score in ranked]
            assert scores == sorted(scores, reverse=True)

    def test_confidences_are_probabilities(self, matcher):
        predictions = matcher.predict()
        for confidence in predictions.confidences.values():
            assert 0.0 <= confidence <= 1.0

    def test_matched_sources_excluded(self, matcher, ground_truth):
        source = AttributeRef("Orders", "qty")
        matcher.record_match(source, ground_truth[source])
        predictions = matcher.predict()
        assert source not in predictions.suggestions

    def test_feedback_improves_or_preserves_labelled_ranking(self, matcher, ground_truth):
        source = AttributeRef("Orders", "disc")
        matcher.record_match(source, ground_truth[source])
        result = matcher.result()
        assert result.target_for(source) == ground_truth[source]

    def test_rejection_records_negatives(self, matcher):
        source = AttributeRef("Orders", "qty")
        predictions = matcher.predict()
        shown = predictions.suggestion_refs(source)
        matcher.record_rejected(source, shown)
        for target in shown:
            pair_id = matcher.store.pair_id(source, target)
            assert matcher.store.labels[pair_id] == 0

    def test_result_is_valid_match_result(self, matcher, ground_truth):
        for source, target in list(ground_truth.items())[:4]:
            matcher.record_match(source, target)
        result = matcher.result()
        assert len(result) == 4
        assert result.accuracy_against(
            {s: t for s, t in list(ground_truth.items())[:4]}
        ) == pytest.approx(1.0)


class TestSelection:
    def test_first_selection_is_anchor(self, matcher):
        matcher.predict()
        chosen = matcher.select_attributes_to_label()
        assert len(chosen) == 1
        assert chosen[0] in set(matcher.source_schema.key_refs())


class TestDtypeInvariant:
    def test_incompatible_pairs_score_exactly_zero(self, matcher):
        """The §IV-D guarantee at matcher level: after adjustment, every
        dtype-incompatible candidate pair scores exactly 0 -- the invariant
        the obs layer's ``scoring.incompatible_pairs_zeroed`` check guards."""
        from repro.core.scoring import dtype_compatibility_mask

        predictions = matcher.predict()
        matcher.record_match(
            AttributeRef("Orders", "qty"), AttributeRef("Transaction", "quantity")
        )
        predictions = matcher.predict()  # retrain with a label + entity penalty live
        mask = dtype_compatibility_mask(matcher.store)
        incompatible = predictions.scores[~mask]
        assert incompatible.size > 0
        assert np.count_nonzero(incompatible) == 0


class TestSession:
    def test_session_completes_and_is_correct(
        self, source_schema, target_schema, config, tiny_artifacts, ground_truth
    ):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        session = MatchingSession(matcher, oracle).run()
        assert session.completed
        assert session.result.accuracy_against(ground_truth) == pytest.approx(1.0)
        # The labeling cost must be below manual labeling (9 attributes).
        assert session.total_labels < source_schema.num_attributes

    def test_curve_is_monotone(self, source_schema, target_schema, config, tiny_artifacts, ground_truth):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        session = MatchingSession(matcher, oracle).run()
        xs, ys = session.curve()
        assert xs == sorted(xs)
        assert ys == sorted(ys)  # matches never get unmatched
        assert ys[-1] == pytest.approx(100.0)

    def test_labels_to_reach(self, source_schema, target_schema, config, tiny_artifacts, ground_truth):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        session = MatchingSession(matcher, oracle).run()
        assert session.labels_to_reach(1.0) is not None
        assert session.labels_to_reach(0.5) <= session.labels_to_reach(1.0)

    def test_noisy_session_plateaus_below_perfect(
        self, source_schema, target_schema, config, tiny_artifacts, ground_truth
    ):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(
            ground_truth,
            target_schema,
            noise_rate=0.5,
            embeddings=tiny_artifacts.embeddings,
            seed=3,
        )
        assert oracle.num_corrupted() > 0
        session = MatchingSession(matcher, oracle).run()
        assert session.completed  # all matched...
        accuracy = session.result.accuracy_against(ground_truth)
        assert accuracy < 1.0  # ...but not all correctly

    def test_zero_max_iterations_runs_zero_iterations(
        self, source_schema, target_schema, config, tiny_artifacts, ground_truth
    ):
        """Regression: ``max_iterations or default`` treated an explicit 0 as
        "unset" and ran the full default-length session."""
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        session = MatchingSession(matcher, oracle, max_iterations=0).run()
        assert session.records == []
        assert not session.completed
        assert session.total_labels == 0

    def test_negative_max_iterations_rejected(
        self, source_schema, target_schema, config, tiny_artifacts, ground_truth
    ):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        with pytest.raises(ValueError, match="max_iterations"):
            MatchingSession(matcher, oracle, max_iterations=-1)

    def test_random_strategy_also_completes(
        self, source_schema, target_schema, tiny_artifacts, ground_truth
    ):
        config = LsmConfig(
            selection_strategy="random",
            bert=BertFeaturizerConfig(
                max_length=24, pretrain_epochs=1, update_epochs=1, seed=0
            ),
            seed=0,
        )
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        session = MatchingSession(matcher, oracle).run()
        assert session.completed


class TestAblationConfigs:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"use_bert": False},
            {"use_descriptions": False},
            {"apply_dtype_filter": False},
            {"apply_entity_penalty": False},
            {"max_candidates_per_source": 5},
        ],
    )
    def test_ablated_configs_complete(
        self, source_schema, target_schema, tiny_artifacts, ground_truth, overrides
    ):
        config = LsmConfig(
            bert=BertFeaturizerConfig(
                max_length=24, pretrain_epochs=1, update_epochs=1, seed=0
            ),
            seed=0,
            **overrides,
        )
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        session = MatchingSession(matcher, oracle).run()
        assert session.completed


def test_manual_labeling_curve():
    xs, ys = manual_labeling_curve(4)
    assert xs == ys
    assert xs[0] == 0.0
    assert xs[-1] == pytest.approx(100.0)
