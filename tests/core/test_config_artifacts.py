"""Tests for LsmConfig validation and artefact building/caching."""

import numpy as np
import pytest

from repro.core import ArtifactConfig, LsmConfig, build_artifacts
from repro.core.artifacts import initialize_token_embeddings
from repro.embeddings.ppmi import PpmiConfig


class TestLsmConfig:
    def test_defaults_match_paper(self):
        config = LsmConfig()
        assert config.top_k == 3
        assert config.labels_per_iteration == 1
        assert config.selection_strategy == "least_confident_anchor"
        assert config.apply_dtype_filter and config.apply_entity_penalty

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"top_k": 0},
            {"labels_per_iteration": 0},
            {"selection_strategy": "nope"},
            {"use_bert": False, "use_embedding": False, "use_lexical": False},
            {"self_training_threshold": 0.4},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LsmConfig(**kwargs)


class TestArtifacts:
    def test_build_without_cache(self, target_schema):
        config = ArtifactConfig(
            vocab_size=300,
            hidden_size=16,
            num_layers=1,
            num_heads=2,
            intermediate_size=32,
            mlm_epochs=1,
            ppmi=PpmiConfig(dim=16),
        )
        artifacts = build_artifacts(target_schema, config=config, use_cache=False)
        assert len(artifacts.tokenizer.vocab) > 10
        assert artifacts.bert.config.hidden_size == 16
        assert artifacts.embeddings.dim == 16
        assert artifacts.corpus

    def test_cache_round_trip(self, target_schema, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ArtifactConfig(
            vocab_size=300,
            hidden_size=16,
            num_layers=1,
            num_heads=2,
            intermediate_size=32,
            mlm_epochs=1,
            ppmi=PpmiConfig(dim=16),
        )
        first = build_artifacts(target_schema, config=config, use_cache=True)
        second = build_artifacts(target_schema, config=config, use_cache=True)
        assert first.cache_key == second.cache_key
        assert np.allclose(
            first.bert.token_embedding.table.value,
            second.bert.token_embedding.table.value,
        )
        assert np.allclose(first.embeddings.input_table, second.embeddings.input_table)

    def test_unknown_embedding_method_rejected(self, target_schema):
        config = ArtifactConfig(embedding_method="bogus")
        with pytest.raises(ValueError):
            config.train_embeddings([["a", "b"]])

    def test_token_embedding_seeding(self, tiny_artifacts):
        from repro.lm import BertConfig, MiniBert

        vocab = tiny_artifacts.tokenizer.vocab
        model = MiniBert(
            BertConfig(vocab_size=len(vocab), hidden_size=32, num_layers=1, num_heads=2,
                       intermediate_size=32, max_position=32),
            seed=9,
        )
        seeded = initialize_token_embeddings(model, vocab, tiny_artifacts.embeddings)
        assert seeded > len(vocab) * 0.5
        # Seeded rows have the canonical norm.
        norms = np.linalg.norm(model.token_embedding.table.value, axis=1)
        non_special = norms[5:]
        assert np.isclose(non_special[non_special > 0.05], 0.16, atol=0.02).mean() > 0.9
