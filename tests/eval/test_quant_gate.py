"""Ranking-space parity gate for the int8 rung, plus the AUC primitive.

The gate's contract (and this PR's acceptance bar): on every public gate
dataset, a classifier fitted on float32 features must rank **identically at
top-1** under int8 scoring, with AUC within ``PARITY_AUC_EPSILON``.
``roc_auc`` itself is unit-tested first -- the gate is only as trustworthy
as its metric.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.eval.metrics import roc_auc
from repro.eval.quant import (
    PARITY_AUC_EPSILON,
    QuantParityReport,
    quant_parity_report,
)
from repro.eval.retrieval import GATE_DATASETS


class TestRocAuc:
    def test_perfect_ranking_is_one(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking_is_zero(self):
        assert roc_auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_interleaved_ranking(self):
        # Positives at 0.2 and 0.4 beat 3 of the 4 (positive, negative) pairs.
        assert roc_auc([0, 1, 0, 1], [0.1, 0.2, 0.3, 0.4]) == pytest.approx(0.75)

    def test_ties_use_midranks(self):
        # One positive tied with one negative: that pair contributes 1/2.
        assert roc_auc([0, 1], [0.5, 0.5]) == pytest.approx(0.5)
        assert roc_auc([0, 0, 1], [0.1, 0.5, 0.5]) == pytest.approx(0.75)

    def test_all_tied_scores_are_half(self):
        assert roc_auc([0, 1, 0, 1], [0.7, 0.7, 0.7, 0.7]) == pytest.approx(0.5)

    def test_degenerate_single_class_returns_half(self):
        assert roc_auc([1, 1, 1], [0.1, 0.2, 0.3]) == 0.5
        assert roc_auc([0, 0], [0.5, 0.9]) == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([0, 1], [0.5])

    def test_matches_naive_pairwise_definition(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(60) > 0.6).astype(np.float64)
        scores = np.round(rng.random(60), 1)  # coarse grid forces ties
        positive = scores[labels > 0.5]
        negative = scores[labels <= 0.5]
        wins = (positive[:, None] > negative[None, :]).sum()
        ties = (positive[:, None] == negative[None, :]).sum()
        expected = (wins + 0.5 * ties) / (positive.size * negative.size)
        assert roc_auc(labels, scores) == pytest.approx(expected)


class TestReportArithmetic:
    def make_report(self, **overrides) -> QuantParityReport:
        base = dict(
            dataset="demo",
            packing="fold",
            pairs=100,
            sources=10,
            top1_agreement=1.0,
            auc_float32=0.95,
            auc_int8=0.9502,
            max_score_deviation=0.004,
            auc_epsilon=PARITY_AUC_EPSILON,
        )
        base.update(overrides)
        return QuantParityReport(**base)

    def test_passes_within_epsilon(self):
        report = self.make_report()
        assert report.auc_delta == pytest.approx(2e-4)
        assert report.passed

    def test_fails_on_top1_disagreement(self):
        assert not self.make_report(top1_agreement=0.99).passed

    def test_fails_on_auc_drift(self):
        assert not self.make_report(auc_int8=0.95 + 2e-3).passed

    def test_as_dict_is_json_ready(self):
        import json

        payload = self.make_report().as_dict()
        assert payload["dataset"] == "demo"
        assert payload["passed"] is True
        json.dumps(payload)


@pytest.mark.parametrize("dataset", GATE_DATASETS)
class TestParityGate:
    """The merge gate proper: one parametrized case per public dataset."""

    def test_int8_ranking_parity(self, dataset):
        report = quant_parity_report(load_dataset(dataset))
        assert report.top1_agreement == 1.0, report.as_dict()
        assert report.auc_delta <= PARITY_AUC_EPSILON, report.as_dict()
        assert report.passed
        # The gate must not be vacuous: scores genuinely differ between
        # rungs (so agreement is earned), and the task has real positives.
        assert report.max_score_deviation > 0.0
        assert 0.0 < report.auc_float32 <= 1.0
        assert report.pairs == report.sources * (report.pairs // report.sources)
