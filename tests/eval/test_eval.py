"""Tests for evaluation metrics and reporting."""

import numpy as np
import pytest

from repro.eval import (
    area_above_curve,
    mean_and_stderr,
    median,
    render_accuracy_table,
    render_table,
    summarise_curve,
    top_k_accuracy,
)
from repro.schema import AttributeRef


def ref(text):
    return AttributeRef.parse(text)


class TestTopKAccuracy:
    def test_basic(self):
        truth = {ref("S.a"): ref("T.x"), ref("S.b"): ref("T.y")}
        suggestions = {
            ref("S.a"): [ref("T.x"), ref("T.z")],
            ref("S.b"): [ref("T.z"), ref("T.w")],
        }
        assert top_k_accuracy(suggestions, truth, k=2) == pytest.approx(0.5)
        assert top_k_accuracy(suggestions, truth, k=1) == pytest.approx(0.5)

    def test_k_truncates(self):
        truth = {ref("S.a"): ref("T.x")}
        suggestions = {ref("S.a"): [ref("T.z"), ref("T.x")]}
        assert top_k_accuracy(suggestions, truth, k=1) == 0.0
        assert top_k_accuracy(suggestions, truth, k=2) == 1.0

    def test_restricted_sources(self):
        truth = {ref("S.a"): ref("T.x"), ref("S.b"): ref("T.y")}
        suggestions = {ref("S.a"): [ref("T.x")], ref("S.b"): [ref("T.y")]}
        assert top_k_accuracy(suggestions, truth, k=1, sources=[ref("S.a")]) == 1.0

    def test_empty(self):
        assert top_k_accuracy({}, {}, k=3) == 0.0


class TestStatistics:
    def test_mean_and_stderr(self):
        mean, stderr = mean_and_stderr([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert stderr == pytest.approx(1.0 / np.sqrt(3))

    def test_singleton(self):
        assert mean_and_stderr([5.0]) == (5.0, 0.0)
        assert mean_and_stderr([]) == (0.0, 0.0)

    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([]) == 0.0


class TestAreaAboveCurve:
    def test_perfect_curve_has_zero_area(self):
        assert area_above_curve([0, 50, 100], [100, 100, 100]) == pytest.approx(0.0)

    def test_manual_labeling_area(self):
        xs = list(np.linspace(0, 100, 101))
        area = area_above_curve(xs, xs)
        assert area == pytest.approx(50.0, rel=1e-2)

    def test_better_curve_has_smaller_area(self):
        xs = [0.0, 50.0, 100.0]
        good = area_above_curve(xs, [80.0, 95.0, 100.0])
        bad = area_above_curve(xs, [10.0, 40.0, 100.0])
        assert good < bad


class TestReporting:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2], [30, 40]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "30" in text and "40" in text

    def test_render_accuracy_table(self):
        table = {"ds1": {"coma": 0.5, "cupid": 0.25}}
        text = render_accuracy_table(table, title="Table III")
        assert "0.50" in text and "0.25" in text
        assert "coma" in text

    def test_summarise_curve(self):
        text = summarise_curve("lsm", [0.0, 5.0, 20.0], [40.0, 70.0, 100.0])
        assert "lsm" in text
        assert "final=100%" in text


class TestTrapezoidCompat:
    """NumPy<2.0 has only ``trapz``; >=2.0 has ``trapezoid`` (and may drop
    ``trapz``).  ``_resolve_trapezoid`` must work on both."""

    def test_resolves_on_installed_numpy(self):
        from repro.eval.metrics import _resolve_trapezoid

        fn = _resolve_trapezoid()
        assert float(fn([0.0, 1.0], [0.0, 1.0])) == pytest.approx(0.5)

    def test_prefers_trapezoid_over_trapz(self):
        from types import SimpleNamespace

        from repro.eval.metrics import _resolve_trapezoid

        new = lambda y, x: "new"
        old = lambda y, x: "old"
        assert _resolve_trapezoid(SimpleNamespace(trapezoid=new, trapz=old)) is new

    def test_falls_back_to_trapz(self):
        from types import SimpleNamespace

        from repro.eval.metrics import _resolve_trapezoid

        old = lambda y, x: "old"
        assert _resolve_trapezoid(SimpleNamespace(trapz=old)) is old

    def test_raises_when_neither_exists(self):
        from types import SimpleNamespace

        from repro.eval.metrics import _resolve_trapezoid

        with pytest.raises(AttributeError, match="neither trapezoid nor trapz"):
            _resolve_trapezoid(SimpleNamespace())

    def test_area_above_curve_value(self):
        # Straight line from (0, 0) to (100, 100): area above is exactly 50.
        assert area_above_curve([0.0, 100.0], [0.0, 100.0]) == pytest.approx(50.0)
