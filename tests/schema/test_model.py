"""Unit tests for the E/R schema model."""

import pytest

from repro.schema import (
    Attribute,
    AttributeRef,
    Correspondence,
    DataType,
    Entity,
    EntityMatch,
    MatchResult,
    Relationship,
    Schema,
    ground_truth_from_pairs,
)


class TestDataType:
    def test_parse_sql_aliases(self):
        assert DataType.parse("VARCHAR(30)") is DataType.STRING
        assert DataType.parse("bigint") is DataType.INTEGER
        assert DataType.parse("NUMERIC(10, 2)") is DataType.DECIMAL
        assert DataType.parse("timestamp") is DataType.DATETIME
        assert DataType.parse("whatisthis") is DataType.UNKNOWN

    def test_numeric_family_is_mutually_compatible(self):
        assert DataType.INTEGER.is_compatible(DataType.DECIMAL)
        assert DataType.FLOAT.is_compatible(DataType.INTEGER)

    def test_incompatible_families(self):
        assert not DataType.STRING.is_compatible(DataType.INTEGER)
        assert not DataType.DATE.is_compatible(DataType.BOOLEAN)

    def test_unknown_is_compatible_with_everything(self):
        for dtype in DataType:
            assert DataType.UNKNOWN.is_compatible(dtype)
            assert dtype.is_compatible(DataType.UNKNOWN)

    def test_temporal_family(self):
        assert DataType.DATE.is_compatible(DataType.DATETIME)
        assert DataType.TIME.is_compatible(DataType.DATE)


class TestAttributeRef:
    def test_parse_round_trip(self):
        ref = AttributeRef.parse("Orders.order_id")
        assert ref.entity == "Orders"
        assert ref.attribute == "order_id"
        assert str(ref) == "Orders.order_id"

    def test_parse_rejects_unqualified(self):
        with pytest.raises(ValueError):
            AttributeRef.parse("order_id")

    def test_ordering_and_hash(self):
        a = AttributeRef("A", "x")
        b = AttributeRef("A", "y")
        assert a < b
        assert len({a, AttributeRef("A", "x")}) == 1


class TestEntity:
    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Entity("E", [Attribute("a"), Attribute("a")])

    def test_primary_key_must_exist(self):
        with pytest.raises(ValueError, match="primary key"):
            Entity("E", [Attribute("a")], primary_key="b")

    def test_attribute_lookup(self):
        entity = Entity("E", [Attribute("a"), Attribute("b")], primary_key="a")
        assert entity.attribute("b").name == "b"
        assert entity.has_attribute("a")
        assert not entity.has_attribute("zz")
        with pytest.raises(KeyError):
            entity.attribute("zz")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Entity("", [])
        with pytest.raises(ValueError):
            Attribute("")


class TestSchema:
    def test_statistics(self, source_schema):
        stats = source_schema.stats()
        assert stats["entities"] == 2
        assert stats["attributes"] == 9
        assert stats["pk_fk"] == 1
        assert stats["descriptions"] is True

    def test_duplicate_entity_rejected(self):
        entity = Entity("E", [Attribute("a")])
        with pytest.raises(ValueError, match="duplicate entity"):
            Schema("s", [entity, Entity("E", [Attribute("b")])])

    def test_relationship_endpoints_validated(self):
        entity = Entity("E", [Attribute("a")])
        bad = Relationship(
            child=AttributeRef("E", "a"), parent=AttributeRef("F", "b")
        )
        with pytest.raises(ValueError, match="unknown attribute"):
            Schema("s", [entity], [bad])

    def test_attribute_lookup_by_string(self, source_schema):
        attribute = source_schema.attribute("Orders.qty")
        assert attribute.dtype is DataType.DECIMAL
        assert source_schema.has_attribute("Orders.qty")
        assert not source_schema.has_attribute("Orders.nope")
        assert not source_schema.has_attribute("garbage")

    def test_key_refs_contains_pks_and_fks(self, source_schema):
        keys = source_schema.key_refs()
        assert AttributeRef("Orders", "order_id") in keys
        assert AttributeRef("Item", "item_id") in keys
        assert AttributeRef("Orders", "item_id") in keys
        # No duplicates even though Orders.item_id is FK only once.
        assert len(keys) == len(set(keys))

    def test_unique_attribute_names_casefold(self):
        schema = Schema(
            "s",
            [
                Entity("A", [Attribute("Name")]),
                Entity("B", [Attribute("name")]),
            ],
        )
        assert schema.num_unique_attribute_names() == 1


class TestMatchArtefacts:
    def test_entity_match_rejects_duplicate_attributes(self):
        c1 = Correspondence(AttributeRef("S", "a"), AttributeRef("T", "x"))
        c2 = Correspondence(AttributeRef("S", "a"), AttributeRef("T", "y"))
        with pytest.raises(ValueError):
            EntityMatch("S", "T", [c1, c2])

    def test_entity_match_rejects_foreign_entities(self):
        c = Correspondence(AttributeRef("Other", "a"), AttributeRef("T", "x"))
        with pytest.raises(ValueError):
            EntityMatch("S", "T", [c])

    def test_match_result_groups_by_entity_pair(self):
        result = MatchResult.from_correspondences(
            [
                Correspondence(AttributeRef("S", "a"), AttributeRef("T", "x")),
                Correspondence(AttributeRef("S", "b"), AttributeRef("U", "y")),
                Correspondence(AttributeRef("S", "c"), AttributeRef("T", "z")),
            ]
        )
        assert len(result.entity_matches) == 2
        assert len(result) == 3
        assert result.target_for(AttributeRef("S", "b")) == AttributeRef("U", "y")
        assert result.target_for(AttributeRef("S", "zz")) is None
        assert result.matched_target_entities() == {"T", "U"}

    def test_match_result_rejects_double_source(self):
        with pytest.raises(ValueError):
            MatchResult.from_correspondences(
                [
                    Correspondence(AttributeRef("S", "a"), AttributeRef("T", "x")),
                    Correspondence(AttributeRef("S", "a"), AttributeRef("T", "y")),
                ]
            )

    def test_accuracy_against_truth(self):
        truth = ground_truth_from_pairs([("S.a", "T.x"), ("S.b", "T.y")])
        result = MatchResult.from_correspondences(
            [Correspondence(AttributeRef("S", "a"), AttributeRef("T", "x"))]
        )
        assert result.accuracy_against(truth) == pytest.approx(0.5)
        assert MatchResult().accuracy_against({}) == 1.0

    def test_ground_truth_duplicate_source_rejected(self):
        with pytest.raises(ValueError):
            ground_truth_from_pairs([("S.a", "T.x"), ("S.a", "T.y")])
