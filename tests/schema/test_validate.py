"""Tests for cross-object dataset validation."""

import pytest

from repro.schema import (
    AttributeRef,
    Correspondence,
    MatchResult,
    ValidationError,
    ground_truth_from_pairs,
    validate_dataset,
    validate_dtype_compatibility,
    validate_match_result,
    validate_total_ground_truth,
)


class TestValidation:
    def test_valid_dataset_passes(self, source_schema, target_schema, ground_truth):
        validate_dataset(source_schema, target_schema, ground_truth)

    def test_unknown_source_endpoint(self, source_schema, target_schema):
        truth = ground_truth_from_pairs([("Orders.nope", "Transaction.quantity")])
        with pytest.raises(ValidationError, match="unknown source"):
            validate_dataset(source_schema, target_schema, truth)

    def test_unknown_target_endpoint(self, source_schema, target_schema):
        truth = ground_truth_from_pairs([("Orders.qty", "Transaction.nope")])
        with pytest.raises(ValidationError, match="unknown target"):
            validate_dataset(source_schema, target_schema, truth)

    def test_partial_truth_fails_totality(self, source_schema, ground_truth):
        partial = dict(list(ground_truth.items())[:3])
        with pytest.raises(ValidationError, match="lack ground truth"):
            validate_total_ground_truth(source_schema, partial)

    def test_dtype_mismatch_detected(self, source_schema, target_schema):
        truth = {
            AttributeRef("Orders", "qty"): AttributeRef("Product", "product_name")
        }
        mismatched = validate_dtype_compatibility(source_schema, target_schema, truth)
        assert mismatched == [
            (AttributeRef("Orders", "qty"), AttributeRef("Product", "product_name"))
        ]

    def test_match_result_validation(self, source_schema, target_schema):
        good = MatchResult.from_correspondences(
            [
                Correspondence(
                    AttributeRef("Orders", "qty"),
                    AttributeRef("Transaction", "quantity"),
                )
            ]
        )
        validate_match_result(source_schema, target_schema, good)
        bad = MatchResult.from_correspondences(
            [Correspondence(AttributeRef("X", "y"), AttributeRef("Z", "w"))]
        )
        with pytest.raises(ValidationError):
            validate_match_result(source_schema, target_schema, bad)
