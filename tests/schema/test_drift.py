"""Tests for the schema-drift delta model (`repro.schema.drift`)."""

import pytest

from repro.schema import (
    AddColumn,
    Attribute,
    AttributeRef,
    DataType,
    DriftError,
    DropColumn,
    RenameColumn,
    RetypeColumn,
    SchemaDelta,
    apply_delta,
    delta_from_dict,
    delta_to_dict,
    remap_ground_truth,
)

from ..conftest import make_ground_truth, make_source_schema


def ref(text: str) -> AttributeRef:
    return AttributeRef.parse(text)


class TestApplyDelta:
    def test_input_schema_is_untouched(self, source_schema):
        before = source_schema.attribute_refs()
        apply_delta(
            source_schema,
            SchemaDelta((RenameColumn(ref("Orders.qty"), "quantity"),)),
        )
        assert source_schema.attribute_refs() == before

    def test_rename_preserves_dtype_description_and_order(self):
        schema = make_source_schema()
        evolved, effect = apply_delta(
            schema, SchemaDelta((RenameColumn(ref("Orders.disc"), "discount"),))
        )
        old = schema.attribute(ref("Orders.disc"))
        new = evolved.attribute(ref("Orders.discount"))
        assert new.dtype is old.dtype
        assert new.description == old.description
        assert not evolved.has_attribute(ref("Orders.disc"))
        # Declaration order is stable: only the name changed.
        assert [r.attribute for r in evolved.entity("Orders").attribute_refs()] == [
            "order_id",
            "item_id",
            "qty",
            "discount",
            "order_date",
        ]
        assert effect.renamed == {ref("Orders.disc"): ref("Orders.discount")}

    def test_primary_key_follows_rename(self):
        evolved, _ = apply_delta(
            make_source_schema(),
            SchemaDelta((RenameColumn(ref("Item.item_id"), "item_key"),)),
        )
        assert evolved.entity("Item").primary_key == "item_key"

    def test_relationships_follow_renames(self):
        evolved, _ = apply_delta(
            make_source_schema(),
            SchemaDelta((RenameColumn(ref("Item.item_id"), "item_key"),)),
        )
        (relationship,) = evolved.relationships
        assert relationship.parent == ref("Item.item_key")
        # The child side keeps its own (unrenamed) name.
        assert relationship.child == ref("Orders.item_id")

    def test_drop_clears_pk_and_relationships(self):
        evolved, effect = apply_delta(
            make_source_schema(),
            SchemaDelta((DropColumn(ref("Item.item_id")),)),
        )
        assert evolved.entity("Item").primary_key is None
        assert evolved.relationships == []
        assert effect.dropped == [ref("Item.item_id")]

    def test_retype_records_old_and_new(self):
        evolved, effect = apply_delta(
            make_source_schema(),
            SchemaDelta((RetypeColumn(ref("Orders.qty"), DataType.INTEGER),)),
        )
        assert evolved.attribute(ref("Orders.qty")).dtype is DataType.INTEGER
        assert effect.retyped == {
            ref("Orders.qty"): (DataType.DECIMAL, DataType.INTEGER)
        }

    def test_add_column(self):
        added = Attribute("loyalty_tier", DataType.STRING, "customer tier")
        evolved, effect = apply_delta(
            make_source_schema(), SchemaDelta((AddColumn("Orders", added),))
        )
        assert evolved.attribute(ref("Orders.loyalty_tier")) == added
        assert effect.added == [ref("Orders.loyalty_tier")]

    def test_operations_apply_sequentially(self):
        # Rename then retype under the *new* name, in one delta.
        evolved, effect = apply_delta(
            make_source_schema(),
            SchemaDelta(
                (
                    RenameColumn(ref("Orders.qty"), "quantity"),
                    RetypeColumn(ref("Orders.quantity"), DataType.INTEGER),
                )
            ),
        )
        assert evolved.attribute(ref("Orders.quantity")).dtype is DataType.INTEGER
        # The retyped key is the post-rename ref.
        assert set(effect.retyped) == {ref("Orders.quantity")}

    @pytest.mark.parametrize(
        "operation",
        [
            RenameColumn(ref("Orders.nope"), "x"),
            RenameColumn(ref("Orders.qty"), "qty"),
            RenameColumn(ref("Orders.qty"), "disc"),
            RetypeColumn(ref("Orders.qty"), DataType.DECIMAL),
            RetypeColumn(ref("Orders.nope"), DataType.STRING),
            DropColumn(ref("Orders.nope")),
            AddColumn("Orders", Attribute("qty", DataType.INTEGER)),
            AddColumn("Ghost", Attribute("x", DataType.STRING)),
        ],
        ids=[
            "rename-unknown",
            "rename-noop",
            "rename-collision",
            "retype-noop",
            "retype-unknown",
            "drop-unknown",
            "add-duplicate",
            "unknown-entity",
        ],
    )
    def test_invalid_operations_raise(self, operation):
        with pytest.raises(DriftError):
            apply_delta(make_source_schema(), SchemaDelta((operation,)))

    def test_cannot_drop_last_column(self):
        from repro.schema import Entity, Schema

        schema = Schema("one", [Entity("E", [Attribute("only")])])
        with pytest.raises(DriftError, match="last column"):
            apply_delta(schema, SchemaDelta((DropColumn(ref("E.only")),)))

    def test_effect_ref_sets(self):
        _, effect = apply_delta(
            make_source_schema(),
            SchemaDelta(
                (
                    RenameColumn(ref("Orders.qty"), "quantity"),
                    DropColumn(ref("Orders.disc")),
                    AddColumn("Item", Attribute("upc", DataType.STRING)),
                )
            ),
        )
        assert effect.stale_refs == {ref("Orders.qty"), ref("Orders.disc")}
        assert effect.text_changed == {ref("Orders.quantity"), ref("Item.upc")}


class TestRemapGroundTruth:
    def test_rename_and_drop(self):
        truth = make_ground_truth()
        _, effect = apply_delta(
            make_source_schema(),
            SchemaDelta(
                (
                    RenameColumn(ref("Orders.qty"), "quantity"),
                    DropColumn(ref("Orders.disc")),
                )
            ),
        )
        remapped = remap_ground_truth(truth, effect)
        assert remapped[ref("Orders.quantity")] == truth[ref("Orders.qty")]
        assert ref("Orders.qty") not in remapped
        assert ref("Orders.disc") not in remapped
        assert len(remapped) == len(truth) - 1


class TestSerialisation:
    def test_round_trip(self):
        delta = SchemaDelta(
            (
                AddColumn("Orders", Attribute("upc", DataType.STRING, "barcode")),
                RenameColumn(ref("Orders.qty"), "quantity"),
                RetypeColumn(ref("Orders.disc"), DataType.FLOAT),
                DropColumn(ref("Orders.order_date")),
            )
        )
        assert delta_from_dict(delta_to_dict(delta)) == delta

    def test_describe_and_counts(self):
        delta = SchemaDelta(
            (
                RenameColumn(ref("Orders.qty"), "quantity"),
                DropColumn(ref("Orders.disc")),
            )
        )
        assert delta.describe() == "rename Orders.qty -> quantity; drop Orders.disc"
        assert delta.counts() == {"rename": 1, "drop": 1}
        assert len(delta) == 2

    def test_unknown_kind_raises(self):
        with pytest.raises(DriftError):
            delta_from_dict({"operations": [{"op": "explode", "ref": "A.b"}]})
