"""Round-trip tests for schema and ground-truth serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import (
    Attribute,
    DataType,
    Entity,
    Schema,
    ground_truth_from_dict,
    ground_truth_to_dict,
    load_ground_truth,
    load_schema,
    save_ground_truth,
    save_schema,
    schema_from_dict,
    schema_to_dict,
)


class TestSchemaRoundTrip:
    def test_dict_round_trip(self, source_schema):
        rebuilt = schema_from_dict(schema_to_dict(source_schema))
        assert rebuilt.name == source_schema.name
        assert rebuilt.num_entities == source_schema.num_entities
        assert rebuilt.num_attributes == source_schema.num_attributes
        assert rebuilt.num_relationships == source_schema.num_relationships
        for ref, attribute in source_schema.iter_attributes():
            other = rebuilt.attribute(ref)
            assert other.name == attribute.name
            assert other.dtype == attribute.dtype
            assert other.description == attribute.description

    def test_file_round_trip(self, tmp_path, target_schema):
        path = tmp_path / "schema.json"
        save_schema(target_schema, path)
        rebuilt = load_schema(path)
        assert schema_to_dict(rebuilt) == schema_to_dict(target_schema)

    def test_primary_keys_preserved(self, source_schema):
        rebuilt = schema_from_dict(schema_to_dict(source_schema))
        for entity in source_schema.entities:
            assert rebuilt.entity(entity.name).primary_key == entity.primary_key


class TestGroundTruthRoundTrip:
    def test_dict_round_trip(self, ground_truth):
        rebuilt = ground_truth_from_dict(ground_truth_to_dict(ground_truth))
        assert rebuilt == ground_truth

    def test_file_round_trip(self, tmp_path, ground_truth):
        path = tmp_path / "truth.json"
        save_ground_truth(ground_truth, path)
        assert load_ground_truth(path) == ground_truth


_identifier = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)


@settings(max_examples=25, deadline=None)
@given(
    names=st.lists(_identifier, min_size=1, max_size=5, unique=True),
    dtypes=st.lists(st.sampled_from(list(DataType)), min_size=5, max_size=5),
)
def test_property_schema_round_trip(names, dtypes):
    """Any structurally valid schema survives a serialisation round trip."""
    entities = [
        Entity(
            name=f"E_{name}",
            attributes=[Attribute(name, dtype=dtypes[i % len(dtypes)])],
        )
        for i, name in enumerate(names)
    ]
    schema = Schema("prop", entities)
    rebuilt = schema_from_dict(schema_to_dict(schema))
    assert schema_to_dict(rebuilt) == schema_to_dict(schema)
