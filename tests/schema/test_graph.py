"""Tests for the join graph and shortest-path queries."""

from repro.schema import JoinGraph, UNREACHABLE_DISTANCE


class TestJoinGraph:
    def test_direct_edge_distance(self, target_schema):
        graph = JoinGraph(target_schema)
        assert graph.distance("Transaction", "Product") == 1
        assert graph.distance("Product", "Transaction") == 1

    def test_two_hop_distance(self, target_schema):
        graph = JoinGraph(target_schema)
        assert graph.distance("Transaction", "Brand") == 2

    def test_self_distance_is_zero(self, target_schema):
        graph = JoinGraph(target_schema)
        assert graph.distance("Product", "Product") == 0

    def test_distance_to_set_takes_minimum(self, target_schema):
        graph = JoinGraph(target_schema)
        assert graph.distance_to_set("Brand", ["Transaction", "Product"]) == 1
        assert graph.distance_to_set("Brand", ["Transaction"]) == 2

    def test_distance_to_empty_set(self, target_schema):
        graph = JoinGraph(target_schema)
        assert graph.distance_to_set("Brand", []) == UNREACHABLE_DISTANCE

    def test_matched_entity_has_zero_distance(self, target_schema):
        graph = JoinGraph(target_schema)
        assert graph.distance_to_set("Product", ["Product"]) == 0

    def test_neighbors(self, target_schema):
        graph = JoinGraph(target_schema)
        assert graph.neighbors("Product") == ["Brand", "Transaction"]

    def test_connected_components(self, target_schema, source_schema):
        assert len(JoinGraph(target_schema).connected_components()) == 1
        assert len(JoinGraph(source_schema).connected_components()) == 1

    def test_disconnected_entities(self):
        from repro.schema import Attribute, Entity, Schema

        schema = Schema(
            "s",
            [Entity("A", [Attribute("x")]), Entity("B", [Attribute("y")])],
        )
        graph = JoinGraph(schema)
        assert graph.distance("A", "B") == UNREACHABLE_DISTANCE
