"""Tests for loss functions and their gradients."""

import numpy as np
import pytest

from repro.nn import binary_cross_entropy_with_logits, softmax_cross_entropy


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-3
        assert np.abs(grad).max() < 1e-3

    def test_uniform_prediction_loss(self):
        logits = np.zeros((1, 4))
        loss, _ = softmax_cross_entropy(logits, np.array([2]))
        assert loss == pytest.approx(np.log(4))

    def test_gradient_numeric(self, rng):
        logits = rng.standard_normal((3, 5))
        targets = np.array([0, 2, 4])
        _, grad = softmax_cross_entropy(logits, targets)
        eps = 1e-6
        for index in np.ndindex(*logits.shape):
            original = logits[index]
            logits[index] = original + eps
            plus, _ = softmax_cross_entropy(logits, targets)
            logits[index] = original - eps
            minus, _ = softmax_cross_entropy(logits, targets)
            logits[index] = original
            numeric = (plus - minus) / (2 * eps)
            assert grad[index] == pytest.approx(numeric, rel=1e-3, abs=1e-7)

    def test_ignore_index_excludes_positions(self):
        logits = np.zeros((2, 3))
        targets = np.array([1, -100])
        loss_with_ignore, grad = softmax_cross_entropy(
            logits, targets, ignore_index=-100
        )
        loss_single, _ = softmax_cross_entropy(logits[:1], targets[:1])
        assert loss_with_ignore == pytest.approx(loss_single)
        assert np.allclose(grad[1], 0.0)

    def test_all_ignored_returns_zero(self):
        logits = np.zeros((2, 3))
        targets = np.array([-100, -100])
        loss, grad = softmax_cross_entropy(logits, targets, ignore_index=-100)
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_sample_weights(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        targets = np.array([1, 1])  # first is wrong, second right
        uniform, _ = softmax_cross_entropy(logits, targets)
        weighted, _ = softmax_cross_entropy(
            logits, targets, weights=np.array([0.0, 1.0])
        )
        assert weighted < uniform  # wrong sample weighted out


class TestBinaryCrossEntropy:
    def test_matches_closed_form(self):
        logits = np.array([0.0])
        loss, _ = binary_cross_entropy_with_logits(logits, np.array([1.0]))
        assert loss == pytest.approx(np.log(2))

    def test_stable_for_large_logits(self):
        loss, grad = binary_cross_entropy_with_logits(
            np.array([1000.0, -1000.0]), np.array([1.0, 0.0])
        )
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.isfinite(grad).all()

    def test_gradient_numeric(self, rng):
        logits = rng.standard_normal(6)
        targets = (rng.random(6) > 0.5).astype(np.float64)
        weights = rng.random(6) + 0.5
        _, grad = binary_cross_entropy_with_logits(logits, targets, weights)
        eps = 1e-6
        for i in range(6):
            original = logits[i]
            logits[i] = original + eps
            plus, _ = binary_cross_entropy_with_logits(logits, targets, weights)
            logits[i] = original - eps
            minus, _ = binary_cross_entropy_with_logits(logits, targets, weights)
            logits[i] = original
            numeric = (plus - minus) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-3, abs=1e-8)

    def test_zero_weights(self):
        loss, grad = binary_cross_entropy_with_logits(
            np.array([1.0]), np.array([1.0]), weights=np.array([0.0])
        )
        assert loss == 0.0
        assert np.allclose(grad, 0.0)
