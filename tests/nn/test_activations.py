"""Tests for activations and their backward passes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import (
    gelu,
    gelu_backward,
    log_softmax,
    relu,
    relu_backward,
    sigmoid,
    softmax,
    softmax_backward,
    tanh,
    tanh_backward,
)

_small_arrays = arrays(
    np.float64,
    st.tuples(st.integers(1, 4), st.integers(1, 6)),
    elements=st.floats(-5, 5, allow_nan=False),
)


def _check_backward(function, backward, x, eps=1e-5):
    out, cache = function(x)
    grad = backward(np.ones_like(out), cache)
    for index in np.ndindex(*x.shape):
        original = x[index]
        x[index] = original + eps
        plus = function(x)[0].sum()
        x[index] = original - eps
        minus = function(x)[0].sum()
        x[index] = original
        numeric = (plus - minus) / (2 * eps)
        assert grad[index] == pytest.approx(numeric, rel=1e-3, abs=1e-5)


class TestElementwise:
    def test_gelu_known_values(self):
        out, _ = gelu(np.array([0.0]))
        assert out[0] == pytest.approx(0.0)
        out, _ = gelu(np.array([10.0]))
        assert out[0] == pytest.approx(10.0, rel=1e-3)

    def test_gelu_gradient(self, rng):
        _check_backward(gelu, gelu_backward, rng.standard_normal((3, 4)))

    def test_relu_gradient(self, rng):
        x = rng.standard_normal((3, 4))
        x[np.abs(x) < 0.1] = 0.5  # avoid the kink
        _check_backward(relu, relu_backward, x)

    def test_tanh_gradient(self, rng):
        _check_backward(tanh, tanh_backward, rng.standard_normal((3, 4)))

    def test_sigmoid_stability(self):
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)


class TestSoftmax:
    @settings(max_examples=30, deadline=None)
    @given(_small_arrays)
    def test_property_rows_sum_to_one(self, x):
        out = softmax(x, axis=-1)
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-6)
        assert (out >= 0).all()

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((2, 5))
        assert np.allclose(softmax(x), softmax(x + 100.0), atol=1e-6)

    def test_log_softmax_consistency(self, rng):
        x = rng.standard_normal((2, 5))
        assert np.allclose(np.exp(log_softmax(x)), softmax(x), atol=1e-6)

    def test_softmax_backward_gradient(self, rng):
        x = rng.standard_normal((2, 4))
        out = softmax(x)
        weights = rng.standard_normal((2, 4))
        grad = softmax_backward(weights, out)
        eps = 1e-6
        for index in np.ndindex(*x.shape):
            original = x[index]
            x[index] = original + eps
            plus = (softmax(x) * weights).sum()
            x[index] = original - eps
            minus = (softmax(x) * weights).sum()
            x[index] = original
            numeric = (plus - minus) / (2 * eps)
            assert grad[index] == pytest.approx(numeric, rel=1e-3, abs=1e-6)
