"""Gradient-checked tests for the numpy layer library."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, LayerNorm, Linear, Module, Parameter


def numeric_gradient(f, array, index, eps=1e-3):
    """Central-difference derivative of scalar f w.r.t. array[index]."""
    original = float(array[index])
    array[index] = original + eps
    plus = f()
    array[index] = original - eps
    minus = f()
    array[index] = original
    return (plus - minus) / (2 * eps)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(rng.standard_normal((5, 4)).astype(np.float32))
        assert out.shape == (5, 3)

    def test_forward_3d_input(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(rng.standard_normal((2, 7, 4)).astype(np.float32))
        assert out.shape == (2, 7, 3)

    def test_gradient_check(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.standard_normal((5, 4)).astype(np.float32)

        def loss():
            return float((layer.forward(x).astype(np.float64) ** 2).sum() / 2)

        out = layer.forward(x)
        layer.zero_grad()
        grad_x = layer.backward(out.copy())

        for parameter, name in ((layer.weight, "weight"), (layer.bias, "bias")):
            index = (0, 0) if parameter.value.ndim == 2 else (0,)
            numeric = numeric_gradient(loss, parameter.value, index)
            assert parameter.grad[index] == pytest.approx(numeric, rel=1e-2, abs=1e-4), name

        # Input gradient via perturbation of x.
        def loss_x():
            return float((layer.forward(x).astype(np.float64) ** 2).sum() / 2)

        numeric = numeric_gradient(loss_x, x, (0, 0))
        assert grad_x[0, 0] == pytest.approx(numeric, rel=1e-2, abs=1e-4)

    def test_gradients_accumulate(self, rng):
        layer = Linear(2, 2, rng)
        x = np.ones((1, 2), dtype=np.float32)
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        first = layer.weight.grad.copy()
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        assert np.allclose(layer.weight.grad, 2 * first)


class TestEmbedding:
    def test_lookup(self, rng):
        layer = Embedding(10, 4, rng)
        ids = np.array([[1, 2], [2, 3]])
        out = layer.forward(ids)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 1], out[1, 0])  # same id -> same row

    def test_backward_accumulates_per_row(self, rng):
        layer = Embedding(5, 3, rng)
        ids = np.array([[0, 0, 1]])
        layer.forward(ids)
        layer.zero_grad()
        grad = np.ones((1, 3, 3), dtype=np.float32)
        layer.backward(grad)
        assert np.allclose(layer.table.grad[0], 2.0)  # id 0 used twice
        assert np.allclose(layer.table.grad[1], 1.0)
        assert np.allclose(layer.table.grad[2], 0.0)


class TestLayerNorm:
    def test_output_statistics(self, rng):
        layer = LayerNorm(16)
        x = rng.standard_normal((4, 16)).astype(np.float32) * 3 + 5
        out = layer.forward(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradient_check(self, rng):
        layer = LayerNorm(6)
        layer.gamma.value[:] = rng.standard_normal(6).astype(np.float32)
        x = rng.standard_normal((3, 6)).astype(np.float32)

        def loss():
            return float((layer.forward(x).astype(np.float64) ** 2).sum() / 2)

        out = layer.forward(x)
        layer.zero_grad()
        grad_x = layer.backward(out.copy())

        numeric = numeric_gradient(loss, x, (1, 2))
        assert grad_x[1, 2] == pytest.approx(numeric, rel=2e-2, abs=1e-4)
        numeric_gamma = numeric_gradient(loss, layer.gamma.value, (2,))
        assert layer.gamma.grad[2] == pytest.approx(numeric_gamma, rel=2e-2, abs=1e-4)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        x = rng.standard_normal((4, 4)).astype(np.float32)
        assert np.array_equal(layer.forward(x), x)

    def test_train_mode_scales_survivors(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((1000,), dtype=np.float32)
        out = layer.forward(x)
        survivors = out[out != 0]
        assert np.allclose(survivors, 2.0)
        assert 300 < survivors.size < 700

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((100,), dtype=np.float32)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad != 0, out != 0)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestModule:
    def test_parameter_registry_nested(self, rng):
        parent = Module()
        child = parent.add_child("child", Linear(2, 2, rng))
        assert set(parent.parameters()) == {"child.weight", "child.bias"}
        parent.zero_grad()
        assert np.allclose(child.weight.grad, 0.0)

    def test_train_eval_propagates(self, rng):
        parent = Module()
        child = parent.add_child("d", Dropout(0.1, rng))
        parent.eval()
        assert not child.training
        parent.train()
        assert child.training

    def test_num_parameters(self, rng):
        layer = Linear(3, 4, rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_parameter_zero_grad(self):
        parameter = Parameter(np.ones((2, 2)))
        parameter.grad += 5.0
        parameter.zero_grad()
        assert np.allclose(parameter.grad, 0.0)
