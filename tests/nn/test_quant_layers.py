"""Unit tests for the int8 inference rung's kernels (nn layer level).

Covers per-channel weight quantization, both GEMM packings of
:class:`QuantizedLinear`, the image-cache invalidation that hot-swap
relies on, the LUT nonlinearities and ``layernorm_fast``.  Accuracy
bounds here are kernel-level; end-to-end acceptability is governed by the
ranking-space parity gate (``tests/eval/test_quant_gate.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.activations import gelu, gelu_lut, masked_softmax_lut, softmax
from repro.nn.layers import (
    Linear,
    QUANT_LEVELS,
    QuantizedLinear,
    LayerNorm,
    layernorm_fast,
    quantize_weight_per_channel,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestQuantizeWeightPerChannel:
    def test_round_trip_error_bounded_by_half_step(self, rng):
        weight = rng.standard_normal((48, 24)).astype(np.float32)
        weight_q, scale = quantize_weight_per_channel(weight)
        assert weight_q.dtype == np.int8
        assert scale.shape == (24,)
        reconstructed = weight_q.astype(np.float32) * scale[None, :]
        # Symmetric rounding: error per element is at most scale/2.
        assert (np.abs(reconstructed - weight) <= scale[None, :] / 2 + 1e-7).all()

    def test_per_channel_scales_are_independent(self, rng):
        weight = rng.standard_normal((16, 2)).astype(np.float32)
        weight[:, 1] *= 100.0
        _, scale = quantize_weight_per_channel(weight)
        assert scale[1] > scale[0] * 50
        expected = np.abs(weight).max(axis=0) / QUANT_LEVELS
        np.testing.assert_allclose(scale, expected, rtol=1e-6)

    def test_zero_column_does_not_divide_by_zero(self):
        weight = np.zeros((8, 3), dtype=np.float32)
        weight[:, 0] = 1.0
        weight_q, scale = quantize_weight_per_channel(weight)
        assert np.isfinite(scale).all() and (scale > 0).all()
        assert (weight_q[:, 1:] == 0).all()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_weight_per_channel(np.zeros(4, dtype=np.float32))


class TestQuantizedLinear:
    def make_pair(self, rng, fan_in=32, fan_out=16):
        linear = Linear(fan_in, fan_out, rng)
        return linear, QuantizedLinear.from_linear(linear)

    @pytest.mark.parametrize("packing", ["fold", "accum"])
    def test_matches_float_linear_closely(self, rng, packing):
        linear, quantized = self.make_pair(rng)
        x = rng.standard_normal((8, 32)).astype(np.float32)
        expected = linear.forward(x)
        actual = quantized.forward(x, packing=packing)
        assert actual.dtype == np.float32
        # int8 weights + int8 activations: ~1% relative scale of the output.
        assert np.abs(actual - expected).max() < 0.05 * np.abs(expected).max() + 0.02

    def test_fold_and_accum_agree(self, rng):
        _, quantized = self.make_pair(rng)
        x = rng.standard_normal((4, 32)).astype(np.float32)
        fold = quantized.forward(x, packing="fold")
        accum = quantized.forward(x, packing="accum")
        # Same integer products, different accumulation order: tiny drift.
        np.testing.assert_allclose(fold, accum, atol=1e-4)

    def test_three_dimensional_input(self, rng):
        linear, quantized = self.make_pair(rng)
        x = rng.standard_normal((2, 5, 32)).astype(np.float32)
        out = quantized.forward(x)
        assert out.shape == (2, 5, 16)
        np.testing.assert_allclose(
            out, quantized.forward(x.reshape(-1, 32)).reshape(2, 5, 16)
        )

    def test_unknown_packing_rejected(self, rng):
        _, quantized = self.make_pair(rng)
        with pytest.raises(ValueError):
            quantized.forward(np.zeros((1, 32), dtype=np.float32), packing="turbo")

    def test_backward_refused(self, rng):
        _, quantized = self.make_pair(rng)
        with pytest.raises(RuntimeError):
            quantized.backward(np.zeros((1, 16), dtype=np.float32))

    def test_parameters_are_the_quant_artifacts(self, rng):
        _, quantized = self.make_pair(rng)
        parameters = quantized.parameters()
        assert set(parameters) == {"weight_q", "scale", "bias"}
        assert parameters["weight_q"].value.dtype == np.int8
        assert parameters["scale"].value.dtype == np.float32

    def test_bias_shares_storage_with_float_linear(self, rng):
        linear, quantized = self.make_pair(rng)
        # np.asarray on a same-dtype array copies nothing: in-place float
        # bias updates (load_state_dict) stay visible to the quant rung.
        assert np.shares_memory(quantized.bias.value, linear.bias.value)

    def test_image_cache_invalidated_on_rebind(self, rng):
        _, quantized = self.make_pair(rng)
        x = rng.standard_normal((3, 32)).astype(np.float32)
        before = quantized.forward(x)
        # Rebinding weight_q (what bind_state_views does on hot-swap) must
        # drop the cached float image, not serve stale weights.
        quantized.weight_q.value = np.negative(quantized.weight_q.value)
        after = quantized.forward(x)
        assert np.abs(after - before).max() > 1e-3


class TestLayernormFast:
    def test_matches_training_layernorm(self, rng):
        layer = LayerNorm(32)
        layer.gamma.value[:] = rng.standard_normal(32).astype(np.float32)
        layer.beta.value[:] = rng.standard_normal(32).astype(np.float32)
        x = rng.standard_normal((4, 7, 32)).astype(np.float32)
        expected = layer.forward(x)
        actual = layernorm_fast(x, layer.gamma.value, layer.beta.value)
        np.testing.assert_allclose(actual, expected, atol=1e-5)
        assert actual.dtype == np.float32


class TestLutActivations:
    def test_gelu_lut_error_bounded(self, rng):
        x = (rng.standard_normal((64, 64)) * 3).astype(np.float32)
        exact = gelu(x)[0]
        approx = gelu_lut(x)
        # Error bound: max|gelu'| ~ 1.1, step = max|x|/127.
        step = np.abs(x).max() / 127.0
        assert np.abs(approx - exact).max() <= 1.1 * step

    def test_gelu_lut_zero_input_is_exact(self):
        x = np.zeros((3, 4), dtype=np.float32)
        np.testing.assert_array_equal(gelu_lut(x), np.zeros((3, 4), dtype=np.float32))

    def test_gelu_lut_nonfinite_falls_back_to_exact(self):
        x = np.array([[np.inf, 0.0, -1.0]], dtype=np.float32)
        out = gelu_lut(x)
        np.testing.assert_allclose(out, gelu(x)[0])

    def test_masked_softmax_lut_masks_and_normalises(self, rng):
        scores = (rng.standard_normal((2, 2, 4, 4)) * 4).astype(np.float32)
        key_mask = np.ones((2, 1, 1, 4), dtype=np.float32)
        key_mask[0, ..., 2:] = 0.0
        probs = masked_softmax_lut(scores, key_mask)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-5)
        assert (probs[0, ..., 2:] == 0.0).all()

    def test_masked_softmax_lut_close_to_float_softmax(self, rng):
        scores = (rng.standard_normal((2, 2, 6, 6)) * 3).astype(np.float32)
        mask = np.ones((2, 6), dtype=np.float32)
        mask[1, 4:] = 0.0
        # Float reference: the attention path's additive-bias masking.
        key_bias = (1.0 - mask[:, None, None, :]) * -1e9
        exact = softmax(scores + key_bias, axis=-1)
        approx = masked_softmax_lut(scores, mask[:, None, None, :])
        assert np.abs(approx - exact).max() < 0.01
