"""Tests for module state serialisation."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Module,
    load_module,
    load_state_dict,
    save_module,
    state_dict,
)


def build_model(rng) -> Module:
    model = Module()
    model.add_child("first", Linear(3, 4, rng))
    model.add_child("second", Linear(4, 2, rng))
    return model


class TestStateDict:
    def test_round_trip_in_memory(self, rng):
        model = build_model(rng)
        state = state_dict(model)
        other = build_model(np.random.default_rng(99))
        load_state_dict(other, state)
        for name, parameter in other.parameters().items():
            assert np.array_equal(parameter.value, state[name])

    def test_state_is_a_copy(self, rng):
        model = build_model(rng)
        state = state_dict(model)
        model.parameters()["first.weight"].value[...] = 0.0
        assert not np.allclose(state["first.weight"], 0.0)

    def test_strict_missing_key(self, rng):
        model = build_model(rng)
        state = state_dict(model)
        del state["first.weight"]
        with pytest.raises(KeyError):
            load_state_dict(model, state)
        # Non-strict tolerates it.
        load_state_dict(model, state, strict=False)

    def test_shape_mismatch(self, rng):
        model = build_model(rng)
        state = state_dict(model)
        state["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(model, state, strict=False)

    def test_file_round_trip(self, tmp_path, rng):
        model = build_model(rng)
        path = tmp_path / "model.npz"
        save_module(model, path)
        other = build_model(np.random.default_rng(99))
        load_module(other, path)
        for name, parameter in model.parameters().items():
            assert np.array_equal(parameter.value, other.parameters()[name].value)
