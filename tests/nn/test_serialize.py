"""Tests for module state serialisation."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Module,
    load_module,
    load_state_dict,
    save_module,
    state_dict,
)


def build_model(rng) -> Module:
    model = Module()
    model.add_child("first", Linear(3, 4, rng))
    model.add_child("second", Linear(4, 2, rng))
    return model


class TestStateDict:
    def test_round_trip_in_memory(self, rng):
        model = build_model(rng)
        state = state_dict(model)
        other = build_model(np.random.default_rng(99))
        load_state_dict(other, state)
        for name, parameter in other.parameters().items():
            assert np.array_equal(parameter.value, state[name])

    def test_state_is_a_copy(self, rng):
        model = build_model(rng)
        state = state_dict(model)
        model.parameters()["first.weight"].value[...] = 0.0
        assert not np.allclose(state["first.weight"], 0.0)

    def test_strict_missing_key(self, rng):
        model = build_model(rng)
        state = state_dict(model)
        del state["first.weight"]
        with pytest.raises(KeyError):
            load_state_dict(model, state)
        # Non-strict tolerates it.
        load_state_dict(model, state, strict=False)

    def test_shape_mismatch(self, rng):
        model = build_model(rng)
        state = state_dict(model)
        state["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(model, state, strict=False)

    def test_file_round_trip(self, tmp_path, rng):
        model = build_model(rng)
        path = tmp_path / "model.npz"
        save_module(model, path)
        other = build_model(np.random.default_rng(99))
        load_module(other, path)
        for name, parameter in model.parameters().items():
            assert np.array_equal(parameter.value, other.parameters()[name].value)


class TestNonFloat32Dtypes:
    """The serializer walk must carry the int8 rung's artifacts verbatim."""

    def build_quant(self, rng):
        from repro.nn.layers import QuantizedLinear

        model = Module()
        model.add_child(
            "projection", QuantizedLinear.from_linear(Linear(6, 4, rng))
        )
        return model

    def test_flat_tensors_preserves_dtypes(self, rng):
        from repro.nn.serialize import flat_tensors

        tensors = dict(flat_tensors(self.build_quant(rng)))
        assert tensors["projection.weight_q"].dtype == np.int8
        assert tensors["projection.scale"].dtype == np.float32
        assert tensors["projection.bias"].dtype == np.float32

    def test_state_dict_round_trip_int8(self, rng):
        model = self.build_quant(rng)
        state = state_dict(model)
        other = self.build_quant(np.random.default_rng(99))
        load_state_dict(other, state)
        for name, parameter in other.parameters().items():
            assert parameter.value.dtype == model.parameters()[name].value.dtype
            assert np.array_equal(parameter.value, state[name])

    def test_file_round_trip_int8(self, tmp_path, rng):
        model = self.build_quant(rng)
        path = tmp_path / "quant.npz"
        save_module(model, path)
        other = self.build_quant(np.random.default_rng(99))
        load_module(other, path)
        weight_q = other.parameters()["projection.weight_q"].value
        assert weight_q.dtype == np.int8
        assert np.array_equal(
            weight_q, model.parameters()["projection.weight_q"].value
        )

    def test_bind_state_views_rejects_dtype_mismatch(self, rng):
        from repro.nn.serialize import bind_state_views, flat_tensors

        model = self.build_quant(rng)
        views = {
            name: array.astype(np.float32)
            for name, array in flat_tensors(model)
        }
        with pytest.raises(ValueError, match="layout mismatch"):
            bind_state_views(model, views)

    def test_bind_state_views_rebinds_int8(self, rng):
        from repro.nn.serialize import bind_state_views, flat_tensors

        model = self.build_quant(rng)
        replacement = {
            name: array.copy()  # fresh storage, same layout
            for name, array in flat_tensors(model)
        }
        bind_state_views(model, replacement)
        assert model.parameters()["projection.weight_q"].value is replacement[
            "projection.weight_q"
        ]
