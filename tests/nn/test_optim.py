"""Tests for the optimisers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, clip_gradients


def quadratic_parameter() -> Parameter:
    """Parameter for minimising f(w) = 0.5 * ||w - 3||^2."""
    return Parameter(np.zeros(4))


def quadratic_grad(parameter: Parameter) -> None:
    parameter.grad[...] = parameter.value - 3.0


class TestSGD:
    def test_converges_on_quadratic(self):
        parameter = quadratic_parameter()
        optimizer = SGD({"w": parameter}, lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_grad(parameter)
            optimizer.step()
        assert np.allclose(parameter.value, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        plain = quadratic_parameter()
        momentum = quadratic_parameter()
        sgd = SGD({"w": plain}, lr=0.01)
        sgdm = SGD({"w": momentum}, lr=0.01, momentum=0.9)
        for _ in range(50):
            for optimizer, parameter in ((sgd, plain), (sgdm, momentum)):
                optimizer.zero_grad()
                quadratic_grad(parameter)
                optimizer.step()
        assert np.abs(momentum.value - 3).sum() < np.abs(plain.value - 3).sum()

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD({"w": quadratic_parameter()}, lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = quadratic_parameter()
        optimizer = Adam({"w": parameter}, lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_grad(parameter)
            optimizer.step()
        assert np.allclose(parameter.value, 3.0, atol=1e-2)

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.full(4, 10.0))
        optimizer = Adam({"w": parameter}, lr=0.01, weight_decay=0.1)
        for _ in range(50):
            optimizer.zero_grad()  # zero gradient: only decay acts
            optimizer.step()
        assert np.abs(parameter.value).max() < 10.0

    def test_weight_decay_skips_bias_and_norm_params(self):
        bias = Parameter(np.full(2, 10.0))
        gamma = Parameter(np.full(2, 10.0))
        optimizer = Adam({"layer.bias": bias, "norm.gamma": gamma}, lr=0.01, weight_decay=0.1)
        for _ in range(20):
            optimizer.zero_grad()
            optimizer.step()
        assert np.allclose(bias.value, 10.0)
        assert np.allclose(gamma.value, 10.0)


class TestClipGradients:
    def test_no_clip_below_threshold(self):
        parameter = Parameter(np.zeros(3))
        parameter.grad[...] = np.array([0.1, 0.2, 0.2])
        norm = clip_gradients({"w": parameter}, max_norm=10.0)
        assert norm == pytest.approx(0.3)
        assert np.allclose(parameter.grad, [0.1, 0.2, 0.2])

    def test_clips_to_max_norm(self):
        parameter = Parameter(np.zeros(2))
        parameter.grad[...] = np.array([3.0, 4.0])  # norm 5
        clip_gradients({"w": parameter}, max_norm=1.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_global_norm_across_parameters(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad[...] = 3.0
        b.grad[...] = 4.0
        norm = clip_gradients({"a": a, "b": b}, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0)
