"""Unit tests for the shared-memory weight arena (publish/attach/verify).

Everything here runs in-process: a :class:`WeightArena` publishes weights
from one model and an :class:`ArenaClient` binds zero-copy views into a
second, weight-less skeleton.  The fault-injection cases corrupt the
control/data segments directly to prove the torn-publish defences, and
every test asserts the unlink discipline (no live segments after close).
"""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest

from repro.engine import ArenaClient, ArenaError, ArenaManifest, WeightArena
from repro.engine.shm import (
    ScratchRegion,
    _new_segment,
    live_segment_names,
    shared_memory_available,
)
from repro.featurizers.bert import MatchingClassifier
from repro.lm.bert import MiniBert
from repro.lm.config import BertConfig
from repro.nn.serialize import flat_tensors

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="shared memory disabled or unavailable"
)

CONFIG = BertConfig(
    vocab_size=50,
    hidden_size=16,
    num_layers=1,
    num_heads=2,
    intermediate_size=32,
    max_position=32,
)


def make_stack(seed: int):
    model = MiniBert(CONFIG, seed=seed)
    model.eval()
    classifier = MatchingClassifier(16, 8, np.random.default_rng(seed + 1))
    classifier.eval()
    return model, classifier


def prefixed_tensors(model, classifier) -> list[tuple[str, np.ndarray]]:
    return [(f"model.{n}", a) for n, a in flat_tensors(model)] + [
        (f"classifier.{n}", a) for n, a in flat_tensors(classifier)
    ]


def assert_no_leaks(base: str) -> None:
    leaked = [name for name in live_segment_names() if name.startswith(base)]
    assert not leaked, leaked
    if os.path.isdir("/dev/shm"):
        on_disk = [name for name in os.listdir("/dev/shm") if name.startswith(base)]
        assert not on_disk, on_disk


class TestWeightArena:
    def test_publish_attach_parity(self):
        source_model, source_classifier = make_stack(seed=0)
        skeleton_model, skeleton_classifier = make_stack(seed=99)
        arena = WeightArena()
        try:
            arena.publish(prefixed_tensors(source_model, source_classifier), version=1)
            client = ArenaClient(arena.ctrl_name, skeleton_model, skeleton_classifier)
            try:
                swapped, seconds = client.sync()
                assert swapped and seconds >= 0.0
                for name, parameter in skeleton_model.parameters().items():
                    np.testing.assert_array_equal(
                        parameter.value, source_model.parameters()[name].value
                    )
                for name, parameter in skeleton_classifier.parameters().items():
                    np.testing.assert_array_equal(
                        parameter.value, source_classifier.parameters()[name].value
                    )
                # The bound views are zero-copy and read-only.
                some = next(iter(skeleton_model.parameters().values())).value
                assert not some.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    some[...] = 0.0
                # Unchanged version: sync is a no-op stamp comparison.
                assert client.sync() == (False, 0.0)
            finally:
                client.close()
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_hot_swap_on_republish(self):
        source_model, source_classifier = make_stack(seed=0)
        skeleton_model, skeleton_classifier = make_stack(seed=99)
        arena = WeightArena()
        try:
            arena.publish(prefixed_tensors(source_model, source_classifier), version=1)
            client = ArenaClient(arena.ctrl_name, skeleton_model, skeleton_classifier)
            try:
                client.sync()
                for parameter in source_model.parameters().values():
                    parameter.value = parameter.value + np.float64(0.25).astype(
                        parameter.value.dtype
                    )
                arena.publish(
                    prefixed_tensors(source_model, source_classifier), version=2
                )
                swapped, _ = client.sync()
                assert swapped
                assert client.version == 2
                for name, parameter in skeleton_model.parameters().items():
                    np.testing.assert_array_equal(
                        parameter.value, source_model.parameters()[name].value
                    )
            finally:
                client.close()
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_version_stamp_written_last_is_detected_when_torn(self):
        """A bumped stamp over a stale manifest must refuse the swap."""
        source_model, source_classifier = make_stack(seed=0)
        skeleton_model, skeleton_classifier = make_stack(seed=99)
        arena = WeightArena()
        try:
            arena.publish(prefixed_tensors(source_model, source_classifier), version=1)
            client = ArenaClient(arena.ctrl_name, skeleton_model, skeleton_classifier)
            try:
                client.sync()
                # Simulate a torn publish: the stamp moved but the manifest
                # (still describing version 1) was never rewritten.
                struct.pack_into("<q", arena._ctrl.buf, 0, 7)
                with pytest.raises(ArenaError, match="torn publish"):
                    client.sync()
            finally:
                client.close()
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_corrupt_manifest_payload_is_detected(self):
        source_model, source_classifier = make_stack(seed=0)
        skeleton_model, skeleton_classifier = make_stack(seed=99)
        arena = WeightArena()
        try:
            arena.publish(prefixed_tensors(source_model, source_classifier), version=1)
            # Flip a manifest byte; a fresh client (no cached version) must
            # notice the digest mismatch before trusting any layout info.
            arena._ctrl.buf[40] ^= 0xFF
            client = ArenaClient(arena.ctrl_name, skeleton_model, skeleton_classifier)
            try:
                with pytest.raises(ArenaError, match="manifest digest"):
                    client.sync()
            finally:
                client.close()
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_corrupt_weight_bytes_are_detected(self):
        source_model, source_classifier = make_stack(seed=0)
        skeleton_model, skeleton_classifier = make_stack(seed=99)
        arena = WeightArena()
        try:
            arena.publish(prefixed_tensors(source_model, source_classifier), version=1)
            arena._data.buf[3] ^= 0xFF
            client = ArenaClient(arena.ctrl_name, skeleton_model, skeleton_classifier)
            try:
                with pytest.raises(ArenaError, match="weight digest"):
                    client.sync()
            finally:
                client.close()
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_data_segment_grows_by_generation(self):
        arena = WeightArena()
        try:
            small = [("a", np.zeros(4, dtype=np.float64))]
            manifest_small = arena.publish(small, version=1)
            big = [("a", np.zeros(1 << 16, dtype=np.float64))]
            manifest_big = arena.publish(big, version=2)
            assert manifest_big.data_segment != manifest_small.data_segment
            # The outgrown generation's name was unlinked immediately.
            assert manifest_small.data_segment not in live_segment_names()
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_oversized_manifest_raises_instead_of_moving_ctrl(self):
        arena = WeightArena()
        try:
            arena.publish([("a", np.zeros(1, dtype=np.float64))], version=1)
            huge = [
                (f"tensor-{i:04d}-{'x' * 64}", np.zeros(1, dtype=np.float64))
                for i in range(4000)
            ]
            with pytest.raises(ArenaError, match="control segment"):
                arena.publish(huge, version=2)
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_stale_orphan_segment_is_reclaimed(self):
        from multiprocessing import shared_memory

        name = "repro-test-orphan"
        orphan = shared_memory.SharedMemory(name=name, create=True, size=64)
        orphan.buf[0] = 42
        # A "crashed previous run": the segment exists but nobody owns it.
        reclaimed = _new_segment(name, 128)
        try:
            assert reclaimed.size >= 128
            assert reclaimed.buf[0] == 0  # fresh segment, not the orphan
        finally:
            from repro.engine.shm import _unlink_segment

            _unlink_segment(reclaimed)
        try:
            orphan.close()
        except BufferError:
            pass
        assert name not in live_segment_names()


class TestScratchRegion:
    def test_roundtrip_and_growth(self):
        from multiprocessing import shared_memory

        scratch = ScratchRegion("repro-test-scratch-")
        try:
            arrays = [
                np.arange(12, dtype=np.int64).reshape(3, 4),
                np.linspace(0.0, 1.0, 7),
            ]
            name, descriptors = scratch.write(arrays)
            reader = shared_memory.SharedMemory(name=name)
            try:
                for array, (shape, dtype, offset) in zip(arrays, descriptors):
                    view = np.ndarray(shape, dtype=dtype, buffer=reader.buf, offset=offset)
                    np.testing.assert_array_equal(view, array)
            finally:
                reader.close()
            # A write that outgrows the segment rolls to a new generation.
            big_name, _ = scratch.write([np.zeros(1 << 18, dtype=np.float64)])
            assert big_name != name
            assert name not in live_segment_names()
        finally:
            scratch.close()
        assert_no_leaks("repro-test-scratch-")


class TestManifest:
    def test_payload_roundtrip(self):
        manifest = ArenaManifest(
            version=3,
            data_segment="seg",
            total_bytes=128,
            data_digest=b"\x00" * 16,
            tensors=(),
        )
        assert ArenaManifest.from_payload(manifest.to_payload()) == manifest

    def test_foreign_payload_rejected(self):
        import pickle

        with pytest.raises(ArenaError, match="decoded to"):
            ArenaManifest.from_payload(pickle.dumps("not a manifest"))


def test_disable_env_kills_availability(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
    assert not shared_memory_available()


class TestQuantArena:
    """Int8 + scale tensors through the arena: the quantize-on-publish path."""

    def quant_tensors(self, seed: int):
        from repro.engine.quant import QuantizedScorer

        model, classifier = make_stack(seed=seed)
        scorer = QuantizedScorer(model, classifier, [0, 1, 2, 3, 4])
        return scorer, scorer.quant_tensors()

    def test_int8_and_scale_round_trip(self):
        scorer, tensors = self.quant_tensors(seed=0)
        arena = WeightArena()
        try:
            arena.publish(tensors, version=1)
            views = arena.views()
            assert set(views) == {name for name, _ in tensors}
            for name, array in tensors:
                view = views[name]
                assert view.dtype == array.dtype, name
                np.testing.assert_array_equal(view, array)
                assert not view.flags.writeable
            # At least one published tensor really is int8 (the rung's
            # whole point); scales ride along as float32.
            dtypes = {views[name].dtype for name, _ in tensors}
            assert np.dtype(np.int8) in dtypes and np.dtype(np.float32) in dtypes
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_scorer_rebinds_to_published_views(self):
        from repro.lm.tokenizer import EncodedPair

        scorer, tensors = self.quant_tensors(seed=0)
        rng = np.random.default_rng(3)
        ids = rng.integers(5, 50, size=(4, 12)).astype(np.int64)
        batch = EncodedPair(
            input_ids=ids,
            segment_ids=np.zeros_like(ids),
            attention_mask=np.ones_like(ids),
        )
        before = scorer.score(batch)
        arena = WeightArena()
        try:
            arena.publish(tensors, version=1)
            scorer.rebind_views(arena.views())
            np.testing.assert_allclose(scorer.score(batch), before, atol=1e-7)
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_torn_publish_detected_on_int8_manifest(self):
        """The stamp-last defence must hold for mixed float+int8 publishes."""
        source_model, source_classifier = make_stack(seed=0)
        scorer, tensors = self.quant_tensors(seed=0)
        model, classifier = make_stack(seed=99)
        arena = WeightArena()
        try:
            arena.publish(
                prefixed_tensors(source_model, source_classifier) + tensors,
                version=1,
            )
            client = ArenaClient(arena.ctrl_name, model, classifier)
            try:
                client.sync()
                # Stamp moved, manifest still describes version 1.
                struct.pack_into("<q", arena._ctrl.buf, 0, 9)
                with pytest.raises(ArenaError, match="torn publish"):
                    client.sync()
            finally:
                client.close()
        finally:
            arena.close()
        assert_no_leaks(arena.base)

    def test_corrupt_int8_bytes_detected(self):
        scorer, tensors = self.quant_tensors(seed=0)
        arena = WeightArena()
        try:
            arena.publish(tensors, version=1)
            # Flip one byte inside the data segment; a fresh client must
            # notice the data digest mismatch.
            arena._data.buf[64] ^= 0xFF
            model, classifier = make_stack(seed=99)
            client = ArenaClient(arena.ctrl_name, model, classifier)
            try:
                with pytest.raises(ArenaError):
                    client.sync()
            finally:
                client.close()
        finally:
            arena.close()
        assert_no_leaks(arena.base)
