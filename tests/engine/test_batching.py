"""Unit tests: bucket planning, padding trim and executor fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    MicroBatchExecutor,
    ScoringEngine,
    bucket_key,
    fingerprint_encoded,
    plan_microbatches,
)
from repro.featurizers.bert import MatchingClassifier, score_encoded_batch
from repro.lm.bert import MiniBert
from repro.lm.config import BertConfig
from repro.lm.tokenizer import (
    EncodedPair,
    encoded_length,
    stack_encoded,
    trim_encoded,
)


def encoded_of_length(length: int, width: int = 32, fill: int = 7) -> EncodedPair:
    """A synthetic unbatched encoded pair with ``length`` real tokens."""
    input_ids = np.zeros(width, dtype=np.int64)
    input_ids[:length] = fill
    attention = np.zeros(width, dtype=np.int64)
    attention[:length] = 1
    segment = np.zeros(width, dtype=np.int64)
    segment[length // 2 : length] = 1
    return EncodedPair(input_ids=input_ids, segment_ids=segment, attention_mask=attention)


class TestBucketKey:
    def test_rounds_up_to_granularity(self):
        assert bucket_key(1, 8) == 8
        assert bucket_key(8, 8) == 8
        assert bucket_key(9, 8) == 16
        assert bucket_key(5, 1) == 5

    def test_non_positive_lengths_land_in_first_bucket(self):
        assert bucket_key(0, 8) == 8


class TestTrimEncoded:
    def test_trims_to_longest_row(self):
        batch = stack_encoded([encoded_of_length(5), encoded_of_length(9)])
        trimmed = trim_encoded(batch)
        assert trimmed.input_ids.shape == (2, 9)

    def test_refuses_to_drop_real_tokens(self):
        batch = stack_encoded([encoded_of_length(9)])
        with pytest.raises(ValueError, match="drops real tokens"):
            trim_encoded(batch, 8)

    def test_length_capped_at_stored_width(self):
        batch = stack_encoded([encoded_of_length(5, width=16)])
        assert trim_encoded(batch, 64).input_ids.shape == (1, 16)

    def test_rejects_unbatched(self):
        with pytest.raises(ValueError, match="stack_encoded"):
            trim_encoded(encoded_of_length(5))

    def test_encoded_length_rejects_batched(self):
        batch = stack_encoded([encoded_of_length(5)])
        with pytest.raises(ValueError, match="unbatched"):
            encoded_length(batch)


class TestPlanMicrobatches:
    def test_partitions_indices_exactly_once(self):
        encoded = [encoded_of_length(length) for length in (3, 30, 4, 17, 5, 30, 8)]
        plan = plan_microbatches(encoded, microbatch_size=2, bucket_granularity=8)
        seen = sorted(i for mb in plan for i in mb.indices)
        assert seen == list(range(len(encoded)))

    def test_groups_by_bucketed_length(self):
        encoded = [encoded_of_length(length) for length in (3, 30, 4)]
        plan = plan_microbatches(encoded, microbatch_size=8, bucket_granularity=8)
        assert [mb.padded_length for mb in plan] == [8, 32]
        assert plan[0].indices == (0, 2)
        assert plan[1].indices == (1,)

    def test_respects_microbatch_size(self):
        encoded = [encoded_of_length(4) for _ in range(10)]
        plan = plan_microbatches(encoded, microbatch_size=3, bucket_granularity=8)
        assert [len(mb.indices) for mb in plan] == [3, 3, 3, 1]

    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="microbatch_size"):
            plan_microbatches([], microbatch_size=0)
        with pytest.raises(ValueError, match="bucket_granularity"):
            plan_microbatches([], bucket_granularity=0)


class TestFingerprint:
    def test_sensitive_to_ids_and_segments(self):
        base = encoded_of_length(6)
        same = encoded_of_length(6)
        other_ids = encoded_of_length(6, fill=8)
        assert fingerprint_encoded(base) == fingerprint_encoded(same)
        assert fingerprint_encoded(base) != fingerprint_encoded(other_ids)
        flipped = EncodedPair(
            input_ids=base.input_ids,
            segment_ids=1 - base.segment_ids,
            attention_mask=base.attention_mask,
        )
        assert fingerprint_encoded(base) != fingerprint_encoded(flipped)


@pytest.fixture(scope="module")
def tiny_stack():
    model = MiniBert(BertConfig(vocab_size=50, hidden_size=16, num_layers=1, num_heads=2,
                                intermediate_size=32, max_position=32), seed=0)
    model.eval()
    classifier = MatchingClassifier(16, 8, np.random.default_rng(1))
    classifier.eval()
    return model, classifier, [0, 1, 2, 3, 4]


class TestExecutorFallback:
    def test_zero_workers_is_unavailable(self):
        executor = MicroBatchExecutor(0)
        assert not executor.available
        assert not executor.ensure_pool(b"", 0)
        assert executor.map([]) is None

    def test_broken_start_method_falls_back_in_process(self, tiny_stack):
        model, classifier, special_ids = tiny_stack
        config = EngineConfig(
            n_workers=2,
            min_pairs_for_workers=1,
            microbatch_size=2,
            start_method="bogus-start-method",
            persist_scores=False,
        )
        engine = ScoringEngine(model, classifier, special_ids, config)
        try:
            encoded = [encoded_of_length(length, fill=5) for length in (4, 9, 14, 20)]
            scores = engine.score_encoded(encoded)
            expected = score_encoded_batch(
                model, classifier, special_ids, stack_encoded(encoded)
            )
            np.testing.assert_allclose(scores, expected, atol=1e-8, rtol=0)
            assert engine.stats.worker_fallbacks == 1
            assert engine.stats.worker_batches == 0
            assert engine.stats.inprocess_batches > 0
        finally:
            engine.close()

    def test_small_batches_stay_in_process(self, tiny_stack):
        model, classifier, special_ids = tiny_stack
        config = EngineConfig(
            n_workers=4, min_pairs_for_workers=1000, persist_scores=False
        )
        engine = ScoringEngine(model, classifier, special_ids, config)
        try:
            engine.score_encoded([encoded_of_length(4, fill=5)])
            assert engine.stats.worker_batches == 0
            assert engine.stats.inprocess_batches == 1
        finally:
            engine.close()
