"""Serving-plane parity: hot-swapped scoring == sequential, across updates.

The shm plane must be a pure optimisation even while weights churn: after
each of several consecutive weight updates the persistent pool's scores
must match the identical plan executed in-process within 1e-8, with the
updates absorbed by arena hot-swaps (``respawns_avoided``) rather than
pool respawns, and with no shared-memory segments left behind after close.
(The bucketed-vs-sequential golden parity lives in ``test_parity.py``;
here the reference engine isolates exactly the serving-plane delta.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    ScoringEngine,
    live_segment_names,
    shared_memory_available,
)
from repro.featurizers.bert import MatchingClassifier, score_encoded_batch
from repro.lm.bert import MiniBert
from repro.lm.config import BertConfig
from repro.lm.tokenizer import EncodedPair, stack_encoded

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="shared memory disabled or unavailable"
)

MAX_LENGTH = 32
NUM_UPDATES = 3


def synthetic_pair(length: int, rng: np.random.Generator) -> EncodedPair:
    input_ids = np.zeros(MAX_LENGTH, dtype=np.int64)
    input_ids[:length] = rng.integers(5, 45, size=length)
    attention = np.zeros(MAX_LENGTH, dtype=np.int64)
    attention[:length] = 1
    segment = np.zeros(MAX_LENGTH, dtype=np.int64)
    segment[length // 2 : length] = 1
    return EncodedPair(input_ids=input_ids, segment_ids=segment, attention_mask=attention)


@pytest.fixture
def stack():
    """Fresh per test: the update tests mutate the weights in place."""
    rng = np.random.default_rng(0)
    model = MiniBert(
        BertConfig(vocab_size=50, hidden_size=16, num_layers=1, num_heads=2,
                   intermediate_size=32, max_position=MAX_LENGTH),
        seed=1,
    )
    model.eval()
    classifier = MatchingClassifier(16, 8, np.random.default_rng(2))
    classifier.eval()
    encoded = [synthetic_pair(4 + int(rng.integers(0, 24)), rng) for _ in range(96)]
    return model, classifier, [0, 1, 2, 3, 4], encoded


def mutate_weights(model, classifier, seed: int) -> None:
    """An in-place weight update, as fine-tuning would produce."""
    rng = np.random.default_rng(seed)
    for module in (model, classifier):
        for parameter in module.parameters().values():
            noise = 0.01 * rng.standard_normal(parameter.value.shape)
            parameter.value += noise.astype(parameter.value.dtype)


def run_updates(stack, config: EngineConfig) -> ScoringEngine:
    """Score, update weights NUM_UPDATES times, re-check parity each time.

    The reference is an identical engine pinned in-process: same bucket
    plan, same trimmed arrays, so any deviation is introduced by shared
    memory (publish, views, scratch transport), not by batching numerics.
    """
    model, classifier, special_ids, encoded = stack
    reference_config = EngineConfig(
        n_workers=0,
        microbatch_size=config.microbatch_size,
        bucket_granularity=config.bucket_granularity,
        persist_scores=False,
    )
    engine = ScoringEngine(model, classifier, special_ids, config)
    reference_engine = ScoringEngine(model, classifier, special_ids, reference_config)
    try:
        for update in range(NUM_UPDATES + 1):
            if update:
                mutate_weights(model, classifier, seed=10 + update)
                engine.invalidate_model()
                reference_engine.invalidate_model()
            reference = reference_engine.score_encoded(encoded)
            scores = engine.score_encoded(encoded)
            np.testing.assert_allclose(
                scores, reference, atol=1e-8, rtol=0,
                err_msg=f"update={update} n_workers={config.n_workers}",
            )
    except BaseException:
        engine.close()
        raise
    finally:
        reference_engine.close()
    return engine


@pytest.mark.parametrize("n_workers", (1, 4))
def test_hot_swap_parity_across_updates(stack, n_workers):
    config = EngineConfig(
        n_workers=n_workers,
        min_pairs_for_workers=1,
        microbatch_size=8,
        persist_scores=False,
    )
    engine = run_updates(stack, config)
    try:
        stats = engine.stats
        assert stats.shm_batches > 0
        assert stats.worker_fallbacks == 0 and stats.shm_fallbacks == 0
        # Every update was absorbed by a live pool, not a respawn.
        assert stats.respawns_avoided == NUM_UPDATES
        assert stats.hot_swaps >= NUM_UPDATES  # each worker swaps per version
        assert stats.publishes == NUM_UPDATES + 1
    finally:
        engine.close()
    assert not live_segment_names()


def test_parity_through_shared_memory_scratch(stack):
    """Forcing all inputs through the scratch region preserves parity too."""
    config = EngineConfig(
        n_workers=2,
        min_pairs_for_workers=1,
        microbatch_size=8,
        persist_scores=False,
        shm_scratch_min_bytes=0,
    )
    engine = run_updates(stack, config)
    try:
        stats = engine.stats
        assert stats.shm_batches > 0
        assert stats.worker_fallbacks == 0 and stats.shm_fallbacks == 0
        assert stats.stage_calls.get("scratch", 0) > 0
    finally:
        engine.close()
    assert not live_segment_names()


def test_zero_workers_never_touches_shared_memory(stack):
    model, classifier, special_ids, encoded = stack
    engine = ScoringEngine(
        model, classifier, special_ids,
        EngineConfig(n_workers=0, persist_scores=False),
    )
    try:
        reference = score_encoded_batch(
            model, classifier, special_ids, stack_encoded(encoded)
        )
        # Bucketed-vs-monolithic numerics (not shm) dominate the tolerance
        # here; the strict 1e-8 golden parity lives in test_parity.py.
        np.testing.assert_allclose(
            engine.score_encoded(encoded), reference, atol=1e-7, rtol=0
        )
        assert engine._plane is None
        assert engine.stats.shm_batches == 0
    finally:
        engine.close()
    assert not live_segment_names()
