"""Engine integration of the int8 rung and the kernel autotuner.

Covers the acceptance-critical behaviours of the quantized scoring path:

* ``quant_mode="on"`` scores through the int8 rung (``quant_batches`` moves)
  and stays within the rung's score tolerance of the exact float32 engine;
* a runtime rung failure degrades to float32 **exactly** (the automatic
  fallback), latching ``quant_fallbacks``;
* ``quant_mode="auto"`` measures per-shape decisions once and persists the
  plan through :mod:`repro.store` -- a second engine startup loads it as a
  cache hit without re-measuring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import EngineConfig, ScoringEngine
from repro.engine.autotune import (
    CANDIDATES,
    FLOAT32_DECISION,
    KernelAutotuner,
    shape_key,
)
from repro.engine.batching import split_batch
from repro.engine.quant import QUANT_PREFIX, QuantizedScorer, has_quant_views
from repro.engine.stats import EngineStats
from repro.eval.quant import activate_channel_path
from repro.featurizers.bert import MatchingClassifier, score_encoded_batch
from repro.lm.bert import MiniBert
from repro.lm.config import BertConfig
from repro.lm.tokenizer import EncodedPair, stack_encoded

CONFIG = BertConfig(
    vocab_size=60,
    hidden_size=32,
    num_layers=1,
    num_heads=2,
    intermediate_size=64,
    max_position=64,
)
SPECIAL_IDS = [0, 1, 2, 3]


def make_stack(seed: int = 0):
    model = MiniBert(CONFIG, seed=seed)
    model.eval()
    classifier = MatchingClassifier(32, 16, np.random.default_rng(seed + 1))
    # Give the channel path real weight so scores depend on the encoder
    # (the zero-initialised classifier would make int8-vs-float32 vacuous).
    activate_channel_path(classifier, seed=seed + 2)
    classifier.eval()
    return model, classifier


def make_pairs(
    count: int = 40, seed: int = 3, padded_length: int = 32
) -> list[EncodedPair]:
    """Pairs padded to a common length, real lengths varying via the mask."""
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        length = int(rng.integers(6, 28))
        ids = np.zeros(padded_length, dtype=np.int64)
        ids[:length] = rng.integers(5, CONFIG.vocab_size, size=length)
        ids[0] = 1
        segments = np.zeros(padded_length, dtype=np.int64)
        segments[length // 2 : length] = 1
        mask = np.zeros(padded_length, dtype=np.int64)
        mask[:length] = 1
        pairs.append(
            EncodedPair(input_ids=ids, segment_ids=segments, attention_mask=mask)
        )
    return pairs


def quant_config(**overrides) -> EngineConfig:
    base = dict(
        n_workers=0,
        persist_scores=False,
        microbatch_size=16,
        bucket_granularity=8,
    )
    base.update(overrides)
    return EngineConfig(**base)


@pytest.fixture
def store_root(tmp_path, monkeypatch):
    """Isolate every persisted artifact (scores, autotune plans) per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


class TestSplitBatch:
    def batch(self, rows: int = 7, length: int = 10) -> EncodedPair:
        rng = np.random.default_rng(rows)
        return EncodedPair(
            input_ids=rng.integers(5, 50, size=(rows, length)).astype(np.int64),
            segment_ids=np.zeros((rows, length), dtype=np.int64),
            attention_mask=np.ones((rows, length), dtype=np.int64),
        )

    def test_single_part_is_identity(self):
        batch = self.batch()
        assert split_batch(batch, 1) == [batch]

    def test_rows_partition_in_order(self):
        batch = self.batch(rows=7)
        chunks = split_batch(batch, 2)
        assert len(chunks) == 2
        np.testing.assert_array_equal(
            np.concatenate([chunk.input_ids for chunk in chunks]), batch.input_ids
        )

    def test_parts_clamped_to_row_count(self):
        batch = self.batch(rows=3)
        chunks = split_batch(batch, 10)
        assert len(chunks) == 3
        assert all(chunk.input_ids.shape[0] == 1 for chunk in chunks)


class TestQuantizedScorer:
    def test_scores_close_to_float_reference(self):
        model, classifier = make_stack()
        scorer = QuantizedScorer(model, classifier, SPECIAL_IDS)
        batch = stack_encoded(make_pairs(12))
        reference = score_encoded_batch(model, classifier, SPECIAL_IDS, batch)
        for packing in ("fold", "accum"):
            for split in (1, 2):
                scores = scorer.score(batch, packing=packing, split=split)
                assert scores.shape == reference.shape
                assert np.abs(scores - reference).max() < 0.05

    def test_quant_tensors_all_prefixed(self):
        model, classifier = make_stack()
        scorer = QuantizedScorer(model, classifier, SPECIAL_IDS)
        tensors = scorer.quant_tensors()
        assert tensors, "publish payload must not be empty"
        assert all(name.startswith(QUANT_PREFIX) for name, _ in tensors)
        assert has_quant_views(dict(tensors))
        assert not has_quant_views({"model.token_embedding.table": None})

    def test_rebind_views_requires_quant_payload(self):
        model, classifier = make_stack()
        scorer = QuantizedScorer(model, classifier, SPECIAL_IDS)
        with pytest.raises(KeyError):
            scorer.rebind_views({"model.token_embedding.table": np.zeros(1)})

    def test_rebind_views_preserves_scores(self):
        model, classifier = make_stack()
        scorer = QuantizedScorer(model, classifier, SPECIAL_IDS)
        batch = stack_encoded(make_pairs(8))
        before = scorer.score(batch)
        published = {name: array.copy() for name, array in scorer.quant_tensors()}
        scorer.rebind_views(published)
        np.testing.assert_allclose(scorer.score(batch), before, atol=1e-7)


class TestEngineConfigValidation:
    def test_unknown_quant_mode_rejected(self):
        with pytest.raises(ValueError, match="quant_mode"):
            EngineConfig(quant_mode="turbo")

    def test_non_positive_atol_rejected(self):
        with pytest.raises(ValueError, match="quant_score_atol"):
            EngineConfig(quant_score_atol=0.0)

    def test_autotune_repeats_floor(self):
        with pytest.raises(ValueError, match="autotune_repeats"):
            EngineConfig(autotune_repeats=0)


class TestEngineQuantOn:
    def test_int8_rung_scores_whole_workload(self, store_root):
        model, classifier = make_stack()
        pairs = make_pairs(40)
        exact = ScoringEngine(model, classifier, SPECIAL_IDS, quant_config())
        quant = ScoringEngine(
            model, classifier, SPECIAL_IDS, quant_config(quant_mode="on")
        )
        try:
            reference = exact.score_encoded(pairs)
            scores = quant.score_encoded(pairs)
            assert quant.stats.quant_batches > 0
            assert quant.stats.quant_fallbacks == 0
            assert np.abs(scores - reference).max() < 0.05
        finally:
            exact.close()
            quant.close()

    def test_serving_info_reports_quant_state(self, store_root):
        model, classifier = make_stack()
        engine = ScoringEngine(
            model, classifier, SPECIAL_IDS, quant_config(quant_mode="on")
        )
        try:
            info = engine.serving_info()
            assert info["serving.quant_mode"] == "on"
            assert info["serving.autotune_shapes"] == 0
        finally:
            engine.close()

    def test_invalidate_model_rebuilds_quant_images(self, store_root):
        model, classifier = make_stack()
        pairs = make_pairs(16)
        engine = ScoringEngine(
            model, classifier, SPECIAL_IDS, quant_config(quant_mode="on")
        )
        try:
            before = engine.score_encoded(pairs)
            # Mutate float weights in place -- invisible to stale int8 images
            # unless invalidate_model() forces a re-quantization.
            table = model.parameters()["token_embedding.table"].value
            table += np.float32(0.05)
            engine.invalidate_model()
            after = engine.score_encoded(pairs)
            # The rebuilt images track the new weights: scores move, and
            # they still agree with the exact path on the mutated model.
            assert np.abs(after - before).max() > 1e-4
            reference = score_encoded_batch(
                model, classifier, SPECIAL_IDS, stack_encoded(pairs)
            )
            assert np.abs(after - reference).max() < 0.05
        finally:
            engine.close()


class TestEngineQuantFallback:
    def test_rung_failure_degrades_to_exact_float32(self, store_root, monkeypatch):
        model, classifier = make_stack()
        pairs = make_pairs(24)
        exact = ScoringEngine(model, classifier, SPECIAL_IDS, quant_config())
        broken = ScoringEngine(
            model, classifier, SPECIAL_IDS, quant_config(quant_mode="on")
        )

        def explode(self, batch, packing="fold", split=1):
            raise RuntimeError("int8 kernel unavailable")

        monkeypatch.setattr(QuantizedScorer, "score", explode)
        try:
            reference = exact.score_encoded(pairs)
            scores = broken.score_encoded(pairs)
            # The automatic fallback: identical to the float32 engine,
            # with the failure accounted for in the stats.
            np.testing.assert_allclose(scores, reference, atol=0, rtol=0)
            assert broken.stats.quant_fallbacks > 0
            assert broken.stats.quant_batches == 0
        finally:
            exact.close()
            broken.close()

    def test_fallback_latches_for_the_version(self, store_root, monkeypatch):
        model, classifier = make_stack()
        pairs = make_pairs(16)
        engine = ScoringEngine(
            model, classifier, SPECIAL_IDS, quant_config(quant_mode="on")
        )
        calls = {"count": 0}

        def explode(self, batch, packing="fold", split=1):
            calls["count"] += 1
            raise RuntimeError("boom")

        monkeypatch.setattr(QuantizedScorer, "score", explode)
        try:
            engine.score_encoded(pairs)
            first = calls["count"]
            engine.clear_cached_scores()
            engine.score_encoded(pairs)
            # Broken is latched: no further int8 attempts this version.
            assert calls["count"] == first
        finally:
            engine.close()


class TestAutotunePersistence:
    def test_auto_mode_measures_then_second_startup_cache_hits(self, store_root):
        model, classifier = make_stack()
        pairs = make_pairs(40)

        first = ScoringEngine(
            model, classifier, SPECIAL_IDS,
            quant_config(quant_mode="auto", autotune_repeats=1),
            cache_token="autotune-test",
        )
        try:
            scores_first = first.score_encoded(pairs)
            assert first.stats.autotune_shapes > 0
            assert first.stats.autotune_runs > 0
            assert first.stats.autotune_cache_hits == 0
            plan_first = dict(first._autotuner.plan)
        finally:
            first.close()

        second = ScoringEngine(
            model, classifier, SPECIAL_IDS,
            quant_config(quant_mode="auto", autotune_repeats=1),
            cache_token="autotune-test",
        )
        try:
            scores_second = second.score_encoded(pairs)
            # Second startup: the persisted plan covers every shape, so the
            # load is a cache hit and nothing is re-measured.
            assert second.stats.autotune_cache_hits == 1
            assert second.stats.autotune_runs == 0
            assert second._autotuner.loaded_from_cache
            assert dict(second._autotuner.plan) == plan_first
            np.testing.assert_allclose(scores_second, scores_first, atol=1e-7)
        finally:
            second.close()

    def test_auto_mode_scores_stay_within_rung_tolerance(self, store_root):
        model, classifier = make_stack()
        pairs = make_pairs(32)
        exact = ScoringEngine(model, classifier, SPECIAL_IDS, quant_config())
        auto = ScoringEngine(
            model, classifier, SPECIAL_IDS,
            quant_config(quant_mode="auto", autotune_repeats=1),
        )
        try:
            reference = exact.score_encoded(pairs)
            scores = auto.score_encoded(pairs)
            assert np.abs(scores - reference).max() <= auto.config.quant_score_atol
            assert auto.stats.quant_fallbacks == 0
        finally:
            exact.close()
            auto.close()

    def test_distinct_cache_tokens_do_not_share_plans(self, store_root):
        model, classifier = make_stack()
        tuner_a = KernelAutotuner(
            model_config=CONFIG.to_dict(), vocab_size=CONFIG.vocab_size,
            cache_token="a",
        )
        tuner_b = KernelAutotuner(
            model_config=CONFIG.to_dict(), vocab_size=CONFIG.vocab_size,
            cache_token="b",
        )
        tuner_a.plan[shape_key(16, 8)] = {
            "rung": "int8", "packing": "fold", "split": 1,
            "speedup": 2.0, "max_deviation": 0.001,
        }
        tuner_a.save()
        assert not tuner_b.load()
        assert tuner_b.plan == {}


class TestStatsCounters:
    def test_fresh_stats_render_all_quant_counters_as_zero(self):
        rendered = EngineStats().as_dict()
        for counter in (
            "quant_batches",
            "quant_fallbacks",
            "autotune_runs",
            "autotune_shapes",
            "autotune_cache_hits",
        ):
            assert rendered[counter] == 0


@pytest.mark.slow
class TestAutotuneSweep:
    """Exhaustive candidate sweep: every strategy measured on every shape."""

    def test_measure_shape_covers_all_candidates(self, store_root):
        model, classifier = make_stack()
        scorer = QuantizedScorer(model, classifier, SPECIAL_IDS)
        tuner = KernelAutotuner(
            model_config=CONFIG.to_dict(),
            vocab_size=CONFIG.vocab_size,
            repeats=1,
            cache_token="sweep",
        )
        attempted: set[tuple[str, int]] = set()

        def quant_score(batch, packing, split):
            attempted.add((packing, split))
            return scorer.score(batch, packing=packing, split=split)

        def float_score(batch):
            return score_encoded_batch(model, classifier, SPECIAL_IDS, batch)

        shapes = [(16, 8), (32, 16), (48, 4)]
        for padded, rows in shapes:
            entry = tuner.measure_shape(padded, rows, float_score, quant_score)
            assert entry["rung"] in ("float32", "int8")
            assert entry["split"] <= rows
            assert entry["max_deviation"] <= tuner.score_atol
        expected = {
            (packing, split)
            for rung, packing, split in CANDIDATES
            if rung != "float32"
        }
        assert attempted == expected

        # The full plan persists and seeds a fresh autotuner verbatim.
        tuner.save()
        fresh = KernelAutotuner(
            model_config=CONFIG.to_dict(),
            vocab_size=CONFIG.vocab_size,
            repeats=1,
            cache_token="sweep",
        )
        assert fresh.load()
        assert fresh.plan == tuner.plan
        for padded, rows in shapes:
            assert fresh.decision_for(padded, rows) is not None

    def test_unmeasured_shape_falls_back_to_float32_decision(self, store_root):
        tuner = KernelAutotuner(
            model_config=CONFIG.to_dict(), vocab_size=CONFIG.vocab_size,
        )
        assert tuner.decision_for(999, 1) is None
        assert FLOAT32_DECISION == ("float32", None, 1)
