"""Golden parity suite: engine scoring == sequential scoring, bit-for-bit-ish.

The batched/bucketed/parallel scoring engine must be a pure optimisation:
for every public dataset pairing, its scores match the sequential one-pair-
at-a-time reference within 1e-8, across worker counts {0, 1, 4} and odd
micro-batch sizes (1, a prime, larger than the pair count).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import PUBLIC_NAMES, load_dataset
from repro.engine import EngineConfig, ScoringEngine, plan_microbatches
from repro.featurizers.bert import MatchingClassifier, score_encoded_batch
from repro.featurizers.base import make_pair_view
from repro.lm.bert import MiniBert
from repro.lm.config import BertConfig
from repro.lm.tokenizer import WordPieceTokenizer, stack_encoded
from repro.lm.vocab import build_vocab
from repro.text.corpus import build_corpus

#: Cap on pairs per dataset: a deterministic stride keeps every dataset and
#: a length-diverse cross-section of its Cartesian product in scope while
#: the suite stays fast.
MAX_PAIRS = 600
MAX_LENGTH = 32

WORKER_COUNTS = (0, 1, 4)


def _batch_sizes(num_pairs: int) -> tuple[int, ...]:
    return (1, 7, num_pairs + 5)


@pytest.fixture(scope="module", params=PUBLIC_NAMES)
def scoring_stack(request):
    """(model, classifier, special_ids, encoded pairs, sequential scores)."""
    task = load_dataset(request.param)
    corpus = build_corpus(schemata=[task.target], seed=0)
    vocab = build_vocab(corpus, target_size=300)
    tokenizer = WordPieceTokenizer(vocab)
    # Parity is a property of the numerics, not of model quality: a
    # deterministic untrained encoder/classifier exercises the same code.
    model = MiniBert(
        BertConfig(
            vocab_size=len(vocab),
            hidden_size=32,
            num_layers=1,
            num_heads=2,
            intermediate_size=64,
            max_position=MAX_LENGTH,
        ),
        seed=1,
    )
    model.eval()
    classifier = MatchingClassifier(32, 16, np.random.default_rng(2))
    classifier.eval()
    special_ids = sorted(vocab.special_ids())

    views = [
        make_pair_view(task.source, task.target, source_ref, target_ref)
        for source_ref in task.source.attribute_refs()
        for target_ref in task.target.attribute_refs()
    ]
    stride = max(1, len(views) // MAX_PAIRS)
    views = views[::stride][:MAX_PAIRS]
    encoded = [
        tokenizer.encode_attribute_pair(
            view.source_name,
            view.source_description,
            view.target_name,
            view.target_description,
            max_length=MAX_LENGTH,
        )
        for view in views
    ]
    sequential = np.array(
        [
            score_encoded_batch(model, classifier, special_ids, stack_encoded([pair]))[0]
            for pair in encoded
        ]
    )
    return model, classifier, special_ids, encoded, sequential


def test_lengths_are_skewed(scoring_stack):
    """The datasets genuinely exercise bucketing: multiple distinct lengths."""
    _, _, _, encoded, _ = scoring_stack
    lengths = {int(pair.attention_mask.sum()) for pair in encoded}
    assert len(lengths) > 1


def test_monolithic_batch_matches_sequential(scoring_stack):
    """The naive all-in-one stacked batch equals the per-pair loop."""
    model, classifier, special_ids, encoded, sequential = scoring_stack
    batched = score_encoded_batch(model, classifier, special_ids, stack_encoded(encoded))
    np.testing.assert_allclose(batched, sequential, atol=1e-8, rtol=0)


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_engine_matches_sequential(scoring_stack, n_workers):
    """Bucketed (and parallel) engine scores equal the sequential reference."""
    model, classifier, special_ids, encoded, sequential = scoring_stack
    config = EngineConfig(
        n_workers=n_workers,
        min_pairs_for_workers=1,
        bucket_granularity=4,
        persist_scores=False,
    )
    engine = ScoringEngine(model, classifier, special_ids, config)
    try:
        for batch_size in _batch_sizes(len(encoded)):
            engine.config.microbatch_size = batch_size
            engine.clear_cached_scores()
            scores = engine.score_encoded(encoded)
            np.testing.assert_allclose(
                scores,
                sequential,
                atol=1e-8,
                rtol=0,
                err_msg=f"n_workers={n_workers} batch_size={batch_size}",
            )
        if n_workers > 0:
            # The pool really ran (no silent fallback to in-process).
            assert engine.stats.worker_batches > 0
            assert engine.stats.worker_fallbacks == 0
    finally:
        engine.close()


def test_engine_scores_are_order_independent(scoring_stack):
    """Permuting the input permutes the output, nothing else."""
    model, classifier, special_ids, encoded, sequential = scoring_stack
    engine = ScoringEngine(
        model,
        classifier,
        special_ids,
        EngineConfig(microbatch_size=13, bucket_granularity=4, persist_scores=False),
    )
    try:
        permutation = np.random.default_rng(0).permutation(len(encoded))
        engine.clear_cached_scores()
        shuffled = engine.score_encoded([encoded[i] for i in permutation])
        np.testing.assert_allclose(shuffled, sequential[permutation], atol=1e-8, rtol=0)
    finally:
        engine.close()


def test_plan_covers_every_pair_once(scoring_stack):
    """The micro-batch plan is a partition of the input indices."""
    _, _, _, encoded, _ = scoring_stack
    plan = plan_microbatches(encoded, microbatch_size=7, bucket_granularity=4)
    seen = [index for microbatch in plan for index in microbatch.indices]
    assert sorted(seen) == list(range(len(encoded)))
    for microbatch in plan:
        assert len(microbatch.indices) <= 7
        lengths = microbatch.batch.attention_mask.sum(axis=1)
        assert int(lengths.max()) <= microbatch.padded_length
