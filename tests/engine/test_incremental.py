"""Incremental re-scoring: only dirty pairs re-run BERT, rankings stay exact.

Regression suite for acceptance criterion 3: after ``record_match`` +
``predict()``, the engine counters prove the clean pairs were served from
the fingerprint cache (>= 50% skipped), and the warm rankings match a cold
full recompute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LsmConfig
from repro.core.matcher import LearnedSchemaMatcher
from repro.engine import EngineConfig, ScoringEngine
from repro.featurizers.bert import MatchingClassifier
from repro.lm.bert import MiniBert
from repro.lm.config import BertConfig

from .test_batching import encoded_of_length


@pytest.fixture()
def incremental_config() -> LsmConfig:
    # A huge update threshold isolates incremental re-scoring from
    # retraining: one label must not touch the BERT weights, so every
    # unchanged pair stays clean.
    return LsmConfig(
        update_bert_every=10**9,
        engine=EngineConfig(persist_scores=False, microbatch_size=16),
    )


def make_matcher(tiny_artifacts, source_schema, target_schema, config) -> LearnedSchemaMatcher:
    return LearnedSchemaMatcher(
        source_schema, target_schema, config=config, artifacts=tiny_artifacts
    )


class TestMatcherIncrementalRescoring:
    def test_second_predict_skips_clean_pairs(
        self, tiny_artifacts, source_schema, target_schema, ground_truth, incremental_config
    ):
        matcher = make_matcher(
            tiny_artifacts, source_schema, target_schema, incremental_config
        )
        try:
            stats = matcher.bert_featurizer.engine.stats
            matcher.predict()
            num_pairs = matcher.store.num_pairs
            assert stats.pairs_scored == num_pairs  # cold pass scored everything
            assert stats.pairs_skipped == 0

            source, target = next(iter(ground_truth.items()))
            matcher.record_match(source, target)
            matcher.predict()

            # No weights changed, so the warm pass re-featurized nothing.
            assert stats.pairs_scored == num_pairs
            assert stats.pairs_skipped == num_pairs
            # Acceptance criterion: >= 50% of pair scorings skipped overall.
            assert stats.skip_fraction >= 0.5
            assert stats.invalidations == 1  # pretrain only
        finally:
            matcher.close()

    def test_warm_rankings_match_cold_recompute(
        self, tiny_artifacts, source_schema, target_schema, ground_truth, incremental_config
    ):
        source, target = next(iter(ground_truth.items()))

        warm = make_matcher(
            tiny_artifacts, source_schema, target_schema, incremental_config
        )
        try:
            warm.predict()
            warm.record_match(source, target)
            warm_predictions = warm.predict()
        finally:
            warm.close()

        cold = make_matcher(
            tiny_artifacts, source_schema, target_schema, incremental_config
        )
        try:
            cold.record_match(source, target)
            cold_predictions = cold.predict()
            assert cold.bert_featurizer.engine.stats.pairs_skipped == 0
        finally:
            cold.close()

        np.testing.assert_allclose(
            warm_predictions.scores, cold_predictions.scores, atol=1e-8, rtol=0
        )
        for ref, suggested in warm_predictions.suggestions.items():
            assert [t for t, _ in suggested] == [
                t for t, _ in cold_predictions.suggestions[ref]
            ]

    def test_update_marks_everything_dirty(
        self, tiny_artifacts, source_schema, target_schema, ground_truth
    ):
        config = LsmConfig(
            update_bert_every=1,
            engine=EngineConfig(persist_scores=False, microbatch_size=16),
        )
        matcher = make_matcher(tiny_artifacts, source_schema, target_schema, config)
        try:
            stats = matcher.bert_featurizer.engine.stats
            matcher.predict()
            num_pairs = matcher.store.num_pairs
            source, target = next(iter(ground_truth.items()))
            matcher.record_match(source, target)
            matcher.predict()  # triggers a BERT update -> full re-score
            assert stats.pairs_scored == 2 * num_pairs
            assert stats.invalidations >= 2  # pretrain + label update
        finally:
            matcher.close()


@pytest.fixture(scope="module")
def engine_stack():
    model = MiniBert(
        BertConfig(vocab_size=50, hidden_size=16, num_layers=1, num_heads=2,
                   intermediate_size=32, max_position=32),
        seed=0,
    )
    model.eval()
    classifier = MatchingClassifier(16, 8, np.random.default_rng(1))
    classifier.eval()
    return model, classifier, [0, 1, 2, 3, 4]


class TestEngineLevelIncrementalRescoring:
    def test_only_new_pairs_are_scored(self, engine_stack):
        model, classifier, special_ids = engine_stack
        engine = ScoringEngine(
            model, classifier, special_ids, EngineConfig(persist_scores=False)
        )
        try:
            first = [encoded_of_length(length, fill=5) for length in (4, 8, 12)]
            engine.score_encoded(first)
            assert engine.stats.pairs_scored == 3

            fresh = [encoded_of_length(16, fill=6), encoded_of_length(20, fill=6)]
            engine.score_encoded(first + fresh)
            assert engine.stats.pairs_scored == 5  # only the two new pairs
            assert engine.stats.pairs_skipped == 3
        finally:
            engine.close()

    def test_weight_change_invalidates_scores(self, engine_stack):
        model, classifier, special_ids = engine_stack
        engine = ScoringEngine(
            model, classifier, special_ids, EngineConfig(persist_scores=False)
        )
        try:
            encoded = [encoded_of_length(length, fill=5) for length in (4, 8, 12)]
            before = engine.score_encoded(encoded)
            classifier.scalar_path.bias.value[:] += 0.5
            engine.invalidate_model()
            after = engine.score_encoded(encoded)
            assert engine.stats.pairs_scored == 6  # everything re-ran
            assert not np.allclose(before, after)
        finally:
            classifier.scalar_path.bias.value[:] -= 0.5
            engine.close()

    def test_scores_persist_across_engines(self, engine_stack, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        model, classifier, special_ids = engine_stack
        encoded = [encoded_of_length(length, fill=5) for length in (4, 8, 12, 16)]

        first = ScoringEngine(
            model, classifier, special_ids, EngineConfig(persist_scores=True),
            cache_token="test-vertical",
        )
        try:
            expected = first.score_encoded(encoded)
            assert first.stats.pairs_scored == 4
        finally:
            first.close()

        second = ScoringEngine(
            model, classifier, special_ids, EngineConfig(persist_scores=True),
            cache_token="test-vertical",
        )
        try:
            scores = second.score_encoded(encoded)
            np.testing.assert_allclose(scores, expected, atol=0, rtol=0)
            assert second.stats.pairs_scored == 0
            assert second.stats.pairs_persisted_hits == 4
        finally:
            second.close()
