"""Fault injection for the serving ladder: every rung degrades, none errors.

Covers the :class:`RetryGate` policy, lazy payload construction, pool
recovery after transient creation failures, worker death mid-map, shm
segment-creation failure (falls to the pickle rung) and the fully disabled
shm plane (``REPRO_DISABLE_SHM``) -- each case asserting bit-identical
scores, the right fallback counters and no leaked ``/dev/shm`` segments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    MicroBatchExecutor,
    RetryGate,
    ScoringEngine,
    live_segment_names,
)
from repro.featurizers.bert import MatchingClassifier, score_encoded_batch
from repro.lm.bert import MiniBert
from repro.lm.config import BertConfig
from repro.lm.tokenizer import EncodedPair, stack_encoded


def encoded_of_length(length: int, width: int = 32, fill: int = 7) -> EncodedPair:
    input_ids = np.zeros(width, dtype=np.int64)
    input_ids[:length] = fill
    attention = np.zeros(width, dtype=np.int64)
    attention[:length] = 1
    segment = np.zeros(width, dtype=np.int64)
    segment[length // 2 : length] = 1
    return EncodedPair(input_ids=input_ids, segment_ids=segment, attention_mask=attention)


@pytest.fixture(scope="module")
def tiny_stack():
    model = MiniBert(
        BertConfig(vocab_size=50, hidden_size=16, num_layers=1, num_heads=2,
                   intermediate_size=32, max_position=32),
        seed=0,
    )
    model.eval()
    classifier = MatchingClassifier(16, 8, np.random.default_rng(1))
    classifier.eval()
    return model, classifier, [0, 1, 2, 3, 4]


@pytest.fixture
def encoded():
    return [encoded_of_length(length, fill=5) for length in (4, 9, 14, 20, 6, 11)]


class TestRetryGate:
    def test_cooldown_then_retry(self):
        gate = RetryGate(cooldown=2, max_failures=3)
        assert gate.may_attempt()
        gate.record_failure()
        # Two eligible calls are skipped, the third is let through.
        assert not gate.may_attempt()
        assert not gate.may_attempt()
        assert gate.may_attempt()

    def test_exhaustion_is_permanent(self):
        gate = RetryGate(cooldown=0, max_failures=2)
        gate.record_failure()
        gate.record_failure()
        assert gate.exhausted
        assert not gate.may_attempt()

    def test_success_resets_failures(self):
        gate = RetryGate(cooldown=0, max_failures=2)
        gate.record_failure()
        gate.record_success()
        gate.record_failure()
        assert not gate.exhausted

    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="cooldown"):
            RetryGate(cooldown=-1)
        with pytest.raises(ValueError, match="max_failures"):
            RetryGate(max_failures=0)


class _FailNTimesContext:
    """A multiprocessing context whose Pool() fails the first ``n`` calls."""

    def __init__(self, failures: int) -> None:
        self.remaining_failures = failures
        self.pools_created = 0

    def Pool(self, processes, initializer, initargs):
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise OSError("synthetic resource blip")
        self.pools_created += 1
        return _StubPool()


class _StubPool:
    def map(self, fn, tasks, chunksize=1):
        return [fn(task) for task in tasks]

    def terminate(self):
        pass

    def join(self):
        pass


class _ExplodingPool:
    """A pool whose map dies mid-flight (worker death / lost connection)."""

    def map(self, fn, tasks, chunksize=1):
        raise BrokenPipeError("worker died mid-map")

    def terminate(self):
        pass

    def join(self):
        pass


class TestExecutorRetry:
    def test_payload_factory_only_called_on_rebuild(self, monkeypatch):
        import multiprocessing

        context = _FailNTimesContext(failures=0)
        monkeypatch.setattr(multiprocessing, "get_context", lambda method: context)
        executor = MicroBatchExecutor(2)
        calls = {"count": 0}

        def factory() -> bytes:
            calls["count"] += 1
            return b"payload"

        assert executor.ensure_pool(factory, version=0)
        assert calls["count"] == 1
        # Same version, pool alive: the factory must not run again.
        assert executor.ensure_pool(factory, version=0)
        assert calls["count"] == 1
        # New version: rebuild, factory runs once more.
        assert executor.ensure_pool(factory, version=1)
        assert calls["count"] == 2
        executor.close()

    def test_transient_creation_failure_recovers_after_cooldown(self, monkeypatch):
        import multiprocessing

        context = _FailNTimesContext(failures=1)
        monkeypatch.setattr(multiprocessing, "get_context", lambda method: context)
        executor = MicroBatchExecutor(2, retry_cooldown=2, max_pool_failures=3)

        assert not executor.ensure_pool(b"payload", version=0)
        assert executor.available  # not sticky-broken anymore
        # Two eligible calls ride out the cooldown, the third rebuilds.
        assert not executor.ensure_pool(b"payload", version=0)
        assert not executor.ensure_pool(b"payload", version=0)
        assert executor.ensure_pool(b"payload", version=0)
        assert context.pools_created == 1
        executor.close()

    def test_repeated_failures_exhaust_the_gate(self, monkeypatch):
        import multiprocessing

        context = _FailNTimesContext(failures=99)
        monkeypatch.setattr(multiprocessing, "get_context", lambda method: context)
        executor = MicroBatchExecutor(2, retry_cooldown=0, max_pool_failures=2)
        assert not executor.ensure_pool(b"payload", version=0)
        assert not executor.ensure_pool(b"payload", version=0)
        assert executor._gate.exhausted
        assert not executor.available


class TestLadderFaults:
    """End-to-end: induced faults fall down the ladder, scores stay exact."""

    def _reference(self, tiny_stack, encoded) -> np.ndarray:
        model, classifier, special_ids = tiny_stack
        return score_encoded_batch(model, classifier, special_ids, stack_encoded(encoded))

    def test_worker_death_mid_map_falls_back_with_parity(self, tiny_stack, encoded):
        model, classifier, special_ids = tiny_stack
        config = EngineConfig(
            n_workers=2,
            min_pairs_for_workers=1,
            microbatch_size=2,
            use_shm=False,
            persist_scores=False,
        )
        engine = ScoringEngine(model, classifier, special_ids, config)
        try:
            # Plant a live-looking pool that dies on first use.
            engine._executor._pool = _ExplodingPool()
            engine._executor._payload_version = engine.model_version
            scores = engine.score_encoded(encoded)
            np.testing.assert_allclose(
                scores, self._reference(tiny_stack, encoded), atol=1e-8, rtol=0
            )
            assert engine.stats.worker_fallbacks == 1
            assert engine.stats.inprocess_batches > 0
            # The dead pool was torn down, not left to poison later calls.
            assert engine._executor._pool is None
        finally:
            engine.close()

    def test_shm_segment_creation_failure_falls_to_pickle_pool(
        self, tiny_stack, encoded, monkeypatch
    ):
        from repro.engine import shm as shm_module

        def refuse(name, size):
            raise OSError("no shared memory for you")

        monkeypatch.setattr(shm_module, "_new_segment", refuse)
        model, classifier, special_ids = tiny_stack
        config = EngineConfig(
            n_workers=2, min_pairs_for_workers=1, microbatch_size=2,
            persist_scores=False,
        )
        engine = ScoringEngine(model, classifier, special_ids, config)
        try:
            scores = engine.score_encoded(encoded)
            np.testing.assert_allclose(
                scores, self._reference(tiny_stack, encoded), atol=1e-8, rtol=0
            )
            # The shm rung failed once, the pickle pool served the plan.
            assert engine.stats.shm_fallbacks == 1
            assert engine.stats.shm_batches == 0
            assert engine.stats.worker_batches > 0
            assert engine.stats.worker_fallbacks == 0
        finally:
            engine.close()
        assert not live_segment_names()

    def test_disabled_shm_serves_identically_via_fallback_ladder(
        self, tiny_stack, encoded, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        model, classifier, special_ids = tiny_stack
        config = EngineConfig(
            n_workers=2, min_pairs_for_workers=1, microbatch_size=2,
            persist_scores=False,
        )
        engine = ScoringEngine(model, classifier, special_ids, config)
        try:
            assert engine._plane is None
            scores = engine.score_encoded(encoded)
            np.testing.assert_allclose(
                scores, self._reference(tiny_stack, encoded), atol=1e-8, rtol=0
            )
            assert engine.stats.shm_batches == 0
            assert engine.stats.worker_batches > 0
            info = engine.serving_info()
            assert info["serving.shm_available"] is False
        finally:
            engine.close()
        assert not live_segment_names()

    def test_stale_orphan_from_crashed_run_does_not_block_startup(
        self, tiny_stack, encoded, monkeypatch
    ):
        """A leftover segment colliding with the arena's name is reclaimed."""
        from multiprocessing import shared_memory

        from repro.engine import shm as shm_module

        monkeypatch.setattr(
            shm_module.uuid, "uuid4", lambda: type("U", (), {"hex": "feedfeed" * 4})()
        )
        import os as _os

        orphan_name = f"repro-{_os.getpid()}-feedfeed-ctrl"
        orphan = shared_memory.SharedMemory(name=orphan_name, create=True, size=64)
        orphan.buf[:8] = b"\xff" * 8  # garbage stamp from the "crashed" run
        model, classifier, special_ids = tiny_stack
        config = EngineConfig(
            n_workers=2, min_pairs_for_workers=1, microbatch_size=2,
            persist_scores=False,
        )
        engine = ScoringEngine(model, classifier, special_ids, config)
        try:
            scores = engine.score_encoded(encoded)
            np.testing.assert_allclose(
                scores, self._reference(tiny_stack, encoded), atol=1e-8, rtol=0
            )
            assert engine.stats.shm_batches > 0
            assert engine.stats.worker_fallbacks == 0
        finally:
            engine.close()
            try:
                orphan.close()
            except BufferError:
                pass
        assert not live_segment_names()
