"""Tests for the interactive baseline session wrapper."""

import pytest

from repro.baselines import ComaMatcher, InteractiveBaselineSession
from repro.core import GroundTruthOracle


@pytest.fixture()
def session_parts(source_schema, target_schema, ground_truth):
    matrix = ComaMatcher().score_matrix(source_schema, target_schema)
    oracle = GroundTruthOracle(ground_truth, target_schema)
    return matrix, oracle


class TestInteractiveBaseline:
    def test_completes_full_schema(self, session_parts, source_schema):
        matrix, oracle = session_parts
        session = InteractiveBaselineSession(matrix, source_schema, oracle)
        result = session.run()
        assert result.completed
        assert result.records[-1].matched_total == source_schema.num_attributes

    def test_all_matches_correct_with_clean_oracle(self, session_parts, source_schema, ground_truth):
        matrix, oracle = session_parts
        session = InteractiveBaselineSession(matrix, source_schema, oracle)
        result = session.run()
        assert result.result.accuracy_against(ground_truth) == pytest.approx(1.0)

    def test_curve_shape(self, session_parts, source_schema):
        matrix, oracle = session_parts
        result = InteractiveBaselineSession(matrix, source_schema, oracle).run()
        xs, ys = result.curve()
        assert xs == sorted(xs)
        assert ys[-1] == pytest.approx(100.0)

    def test_random_strategy(self, session_parts, source_schema):
        matrix, oracle = session_parts
        result = InteractiveBaselineSession(
            matrix, source_schema, oracle, selection_strategy="random"
        ).run()
        assert result.completed

    def test_confirmed_target_not_resuggested(self, session_parts, source_schema):
        matrix, oracle = session_parts
        session = InteractiveBaselineSession(matrix, source_schema, oracle)
        source = session.source_refs[0]
        target = oracle.label(source)
        session._confirm(source, target)
        for other in session.source_refs[1:]:
            assert target not in session._suggestions(other)

    def test_rejection_removes_candidates(self, session_parts, source_schema):
        matrix, oracle = session_parts
        session = InteractiveBaselineSession(matrix, source_schema, oracle)
        source = session.source_refs[0]
        shown = session._suggestions(source)
        session._reject(source, shown)
        new = session._suggestions(source)
        assert not (set(shown) & set(new))
