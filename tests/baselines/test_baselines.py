"""Tests for the six baseline matchers on the tiny synthetic task."""

import numpy as np
import pytest

from repro.baselines import (
    ComaMatcher,
    CupidMatcher,
    LsdMatcher,
    MlmMatcher,
    SMatchMatcher,
    SimilarityFloodingMatcher,
    attribute_texts,
    kmeans,
    split_ground_truth,
)
from repro.schema import AttributeRef
from repro.text.lexicon import generic_lexicon


class TestAttributeTexts:
    def test_fields(self, source_schema):
        texts = attribute_texts(source_schema)
        assert len(texts) == source_schema.num_attributes
        qty = next(t for t in texts if t.ref == AttributeRef("Orders", "qty"))
        assert qty.canonical == "qty"
        assert qty.expanded_tokens == ("quantity",)


class TestScoredMatrix:
    def test_top_k_accuracy(self, source_schema, target_schema, ground_truth):
        matcher = ComaMatcher()
        matrix = matcher.score_matrix(source_schema, target_schema)
        accuracy_1 = matrix.top_k_accuracy(ground_truth, k=1)
        accuracy_5 = matrix.top_k_accuracy(ground_truth, k=5)
        assert 0.0 <= accuracy_1 <= accuracy_5 <= 1.0

    def test_top_k_refs(self, source_schema, target_schema):
        matrix = ComaMatcher().score_matrix(source_schema, target_schema)
        top = matrix.top_k(AttributeRef("Item", "brand_name"), k=3)
        assert len(top) == 3
        assert AttributeRef("Brand", "brand_name") == top[0]

    def test_restricted_sources(self, source_schema, target_schema, ground_truth):
        matrix = ComaMatcher().score_matrix(source_schema, target_schema)
        only = [AttributeRef("Item", "brand_name")]
        accuracy = matrix.top_k_accuracy(ground_truth, k=1, sources=only)
        assert accuracy == 1.0


class TestComa:
    def test_identical_names_score_high(self, source_schema, target_schema):
        matrix = ComaMatcher().score_matrix(source_schema, target_schema, aggregation="average")
        i = matrix.source_refs.index(AttributeRef("Item", "brand_name"))
        j = matrix.target_refs.index(AttributeRef("Brand", "brand_name"))
        assert matrix.scores[i, j] > 0.9

    def test_aggregations_differ(self, source_schema, target_schema):
        matcher = ComaMatcher()
        scores = {
            agg: matcher.score_matrix(source_schema, target_schema, aggregation=agg).scores
            for agg in ("max", "min", "average", "weighted")
        }
        assert (scores["max"] >= scores["min"]).all()
        assert not np.allclose(scores["max"], scores["min"])

    def test_matcher_tensor_cached(self, source_schema, target_schema):
        matcher = ComaMatcher()
        matcher.score_matrix(source_schema, target_schema, aggregation="max")
        assert (source_schema.name, target_schema.name) in matcher._matcher_cache

    def test_unknown_aggregation(self, source_schema, target_schema):
        with pytest.raises(ValueError):
            ComaMatcher().score_matrix(source_schema, target_schema, aggregation="nope")


class TestCupid(object):
    def test_structural_weight_changes_scores(self, source_schema, target_schema, tiny_artifacts):
        matcher = CupidMatcher(tiny_artifacts.embeddings)
        pure_linguistic = matcher.score_matrix(source_schema, target_schema, structural_weight=0.0)
        blended = matcher.score_matrix(source_schema, target_schema, structural_weight=0.6)
        assert not np.allclose(pure_linguistic.scores, blended.scores)

    def test_scores_in_unit_interval(self, source_schema, target_schema, tiny_artifacts):
        matrix = CupidMatcher(tiny_artifacts.embeddings).score_matrix(
            source_schema, target_schema
        )
        assert ((0 <= matrix.scores) & (matrix.scores <= 1.0 + 1e-9)).all()


class TestSMatch:
    def test_abbreviation_resolved(self, source_schema, target_schema):
        matcher = SMatchMatcher()
        matrix = matcher.score_matrix(source_schema, target_schema)
        i = matrix.source_refs.index(AttributeRef("Orders", "qty"))
        j = matrix.target_refs.index(AttributeRef("Transaction", "quantity"))
        assert matrix.scores[i, j] > 0.8

    def test_generic_lexicon_misses_domain_phrases(self, source_schema, target_schema):
        matcher = SMatchMatcher(generic_lexicon())
        matrix = matcher.score_matrix(source_schema, target_schema)
        i = matrix.source_refs.index(AttributeRef("Orders", "disc"))
        j = matrix.target_refs.index(
            AttributeRef("Transaction", "price_change_percentage")
        )
        # "disc"->"discount" vs the multi-word domain phrasing: low score.
        assert matrix.scores[i, j] < 0.5

    def test_blend_variants(self, source_schema, target_schema):
        matcher = SMatchMatcher()
        harmonic = matcher.score_matrix(source_schema, target_schema, blend="harmonic")
        source_only = matcher.score_matrix(source_schema, target_schema, blend="source")
        assert not np.allclose(harmonic.scores, source_only.scores)
        for matrix in (harmonic, source_only):
            assert ((0.0 <= matrix.scores) & (matrix.scores <= 1.0)).all()


class TestSimilarityFlooding:
    def test_runs_and_produces_full_matrix(self, source_schema, target_schema, tiny_artifacts):
        matcher = SimilarityFloodingMatcher(tiny_artifacts.embeddings)
        matrix = matcher.score_matrix(source_schema, target_schema, max_iterations=4)
        assert matrix.scores.shape == (
            source_schema.num_attributes,
            target_schema.num_attributes,
        )
        assert np.isfinite(matrix.scores).all()

    def test_propagation_changes_initial_scores(self, source_schema, target_schema, tiny_artifacts):
        matcher = SimilarityFloodingMatcher(tiny_artifacts.embeddings)
        few = matcher.score_matrix(source_schema, target_schema, max_iterations=1)
        many = matcher.score_matrix(source_schema, target_schema, max_iterations=12)
        assert not np.allclose(few.scores, many.scores)


class TestLsd:
    def test_requires_training(self, source_schema, target_schema):
        with pytest.raises(ValueError):
            LsdMatcher().score_matrix(source_schema, target_schema)

    def test_trains_and_scores(self, source_schema, target_schema, ground_truth):
        split = split_ground_truth(ground_truth, 0.5, seed=0)
        matrix = LsdMatcher().score_matrix(
            source_schema, target_schema, training=split.train
        )
        accuracy = matrix.top_k_accuracy(
            ground_truth, k=3, sources=sorted(split.test, key=str)
        )
        assert 0.0 <= accuracy <= 1.0

    def test_split_is_deterministic_and_partition(self, ground_truth):
        a = split_ground_truth(ground_truth, 0.5, seed=3)
        b = split_ground_truth(ground_truth, 0.5, seed=3)
        assert a.train == b.train
        assert set(a.train) | set(a.test) == set(ground_truth)
        assert not (set(a.train) & set(a.test))


class TestMlm:
    def test_kmeans_separates_clusters(self, rng):
        left = rng.normal(0.0, 0.1, size=(30, 2))
        right = rng.normal(5.0, 0.1, size=(30, 2))
        points = np.vstack([left, right])
        centers, assignments = kmeans(points, 2, rng)
        assert len(set(assignments[:30])) == 1
        assert len(set(assignments[30:])) == 1
        assert assignments[0] != assignments[-1]

    def test_kmeans_rejects_too_few_points(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros((1, 2)), 2, rng)

    def test_scores_well_formed_and_deterministic(self, source_schema, target_schema):
        # MLM's unsupervised clustering produces weak rankings (identical
        # names can sit far from the "match" centroid) -- the very behaviour
        # behind its poor Table III accuracy -- so we only assert structural
        # properties here, not ranking quality.
        a = MlmMatcher().score_matrix(source_schema, target_schema, seed=0)
        b = MlmMatcher().score_matrix(source_schema, target_schema, seed=0)
        assert np.allclose(a.scores, b.scores)
        assert ((0.0 <= a.scores) & (a.scores <= 1.0)).all()
