"""The encode plane's contract: bit-exact with the sequential reference.

Every fast path introduced by :mod:`repro.lm.encode_plane` -- the trie
WordPiece walk, the closed-form pair truncation, zero-copy batch assembly,
digest-parity fingerprints -- is held bit-identical to the per-pair
reference (`encode_pair`/`encode_single`/`fingerprint_encoded`) under
property-based randomisation, including random vocabularies, truncation
overflow and max_length edges.  Plus unit coverage of the LRU bound, the
buffer pool, token-store persistence, and the drift invalidation contract
(the stale-token bug class from the schema-drift work).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batching import plan_bucket_chunks, plan_microbatches
from repro.engine.engine import fingerprint_encoded
from repro.featurizers.bert import BertFeaturizer, BertFeaturizerConfig
from repro.featurizers.base import make_pair_view
from repro.lm.encode_plane import (
    AttributeTokenStore,
    BatchBufferPool,
    EncodePlane,
    EncodeStats,
    LruDict,
    token_key,
    truncate_pair_lengths,
)
from repro.lm.tokenizer import (
    EncodedPair,
    WordPieceTokenizer,
    encoded_length,
    stack_encoded,
    trim_encoded,
)
from repro.lm.vocab import build_vocab, trie_longest_match
from repro.schema import AttributeRef
from repro.text.tokenize import split_identifier

CORPUS = [
    ["product", "item", "price", "amount", "discount", "quantity"],
    ["transaction", "date", "identifier", "brand", "name", "status"],
    ["european", "article", "number", "customer", "order", "line"],
]


@pytest.fixture(scope="module")
def tokenizer() -> WordPieceTokenizer:
    return WordPieceTokenizer(build_vocab(CORPUS, target_size=120))


def make_plane(tokenizer: WordPieceTokenizer, max_length: int = 24, **kwargs) -> EncodePlane:
    kwargs.setdefault("persist_tokens", False)
    return EncodePlane(tokenizer, max_length=max_length, **kwargs)


def reference_word_pieces(vocab, word: str) -> list[str]:
    """The classic O(L^2) greedy longest-match WordPiece, as the oracle."""
    if word in vocab:
        return [word]
    pieces: list[str] = []
    start = 0
    while start < len(word):
        end = len(word)
        piece = None
        while end > start:
            candidate = word[start:end]
            if start > 0:
                candidate = "##" + candidate
            if candidate in vocab:
                piece = candidate
                break
            end -= 1
        if piece is None:
            return ["[UNK]"]
        pieces.append(piece)
        start = end
    return pieces


# -- strategies ----------------------------------------------------------------

# Mostly in-alphabet words, salted with characters outside the corpus
# alphabet so [UNK] paths are exercised.
word_st = st.text(alphabet="abcdeimnoprstuz_19#", min_size=1, max_size=14)
name_st = st.text(alphabet="abcdeimnoprstuz_19", min_size=1, max_size=18)
desc_st = st.one_of(st.just(""), st.text(alphabet="abcdeimnoprstuz 19", max_size=40))
attr_st = st.tuples(name_st, desc_st)


# -- trie WordPiece ------------------------------------------------------------


class TestTrieWordPiece:
    @settings(max_examples=200, deadline=None)
    @given(word_st)
    def test_matches_reference_implementation(self, tokenizer, word):
        assert tokenizer.tokenize_word(word) == reference_word_pieces(
            tokenizer.vocab, word
        )

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.lists(word_st, min_size=1, max_size=6), min_size=1, max_size=4),
        st.lists(word_st, min_size=1, max_size=12),
    )
    def test_matches_reference_on_random_vocabs(self, corpus, words):
        vocab = build_vocab(corpus, target_size=80)
        fresh = WordPieceTokenizer(vocab)
        for word in words:
            assert fresh.tokenize_word(word) == reference_word_pieces(vocab, word)

    def test_longest_match_prefers_longer_piece(self, tokenizer):
        vocab = tokenizer.vocab
        root = vocab.initial_trie
        # Matching a vocab token from position 0 must span the whole token
        # (the longest match), not stop at a shorter prefix piece.
        longest = max(
            (t for t in vocab.tokens if not t.startswith(("##", "["))), key=len
        )
        end, piece_id = trie_longest_match(root, longest, 0)
        assert end == len(longest)
        assert vocab.tokens[piece_id] == longest

    def test_unknown_character_yields_unk(self, tokenizer):
        assert tokenizer.tokenize_word("préix") == ["[UNK]"]

    def test_word_memo_bounded(self):
        small = WordPieceTokenizer(
            build_vocab(CORPUS, target_size=120), word_cache_capacity=2
        )
        for word in ("price", "amount", "brand", "price"):
            small.word_ids(word)
        assert len(small._word_ids) <= 2

    def test_ids_array_dtype(self, tokenizer):
        ids = tokenizer.ids_array(["price", "amount"])
        assert ids.dtype == np.int64
        assert ids.tolist() == tokenizer.ids(["price", "amount"])

    def test_tokenize_many(self, tokenizer):
        rows = tokenizer.tokenize_many([["price"], ["brand", "name"]])
        assert [row.tolist() for row in rows] == [
            tokenizer.ids(["price"]),
            tokenizer.ids(["brand", "name"]),
        ]


# -- truncation closed form ----------------------------------------------------


class TestTruncatePairLengths:
    @settings(max_examples=300, deadline=None)
    @given(
        st.integers(min_value=0, max_value=80),
        st.integers(min_value=0, max_value=80),
        st.integers(min_value=0, max_value=64),
    )
    def test_matches_pop_loop(self, len_a, len_b, budget):
        ref_a, ref_b = len_a, len_b
        while ref_a + ref_b > budget:
            if ref_a >= ref_b:
                ref_a -= 1
            else:
                ref_b -= 1
        assert truncate_pair_lengths(len_a, len_b, budget) == (ref_a, ref_b)

    def test_negative_budget_clamps(self):
        assert truncate_pair_lengths(5, 5, -2) == (0, 0)


# -- batch assembly parity -----------------------------------------------------


class TestAssemblyParity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(attr_st, min_size=1, max_size=6),
        st.integers(min_value=4, max_value=48),
    )
    def test_batch_assembly_bit_exact(self, tokenizer, attrs, max_length):
        """assemble == trim(stack(encode_attribute_pair...)) to the bit."""
        plane = make_plane(tokenizer, max_length=max_length)
        pairs = [(a, b) for a in attrs for b in attrs]
        halves = [
            plane.halves(a[0], a[1], b[0], b[1]) for a, b in pairs
        ]
        sequential = [
            tokenizer.encode_attribute_pair(
                a[0], a[1], b[0], b[1], max_length=max_length
            )
            for a, b in pairs
        ]
        batch = plane.assemble(halves)
        reference = trim_encoded(stack_encoded(sequential))
        np.testing.assert_array_equal(batch.input_ids, reference.input_ids)
        np.testing.assert_array_equal(batch.segment_ids, reference.segment_ids)
        np.testing.assert_array_equal(batch.attention_mask, reference.attention_mask)

        for pair_halves, encoded in zip(halves, sequential):
            one = plane.assemble_one(pair_halves)
            np.testing.assert_array_equal(one.input_ids, encoded.input_ids)
            np.testing.assert_array_equal(one.segment_ids, encoded.segment_ids)
            np.testing.assert_array_equal(one.attention_mask, encoded.attention_mask)
            assert encoded_length(one) == encoded_length(encoded)
            # Digest parity: halves fingerprints key the same score cache.
            assert plane.fingerprint(pair_halves) == fingerprint_encoded(encoded)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(attr_st, min_size=1, max_size=8),
        st.integers(min_value=8, max_value=32),
        st.integers(min_value=1, max_value=8),
    )
    def test_bucketed_chunks_match_plan_microbatches(
        self, tokenizer, attrs, max_length, granularity
    ):
        """plan_bucket_chunks on half lengths == plan_microbatches batches."""
        plane = make_plane(tokenizer, max_length=max_length)
        halves = [plane.halves(a[0], a[1], a[0], a[1]) for a in attrs]
        sequential = [
            tokenizer.encode_attribute_pair(a[0], a[1], a[0], a[1], max_length=max_length)
            for a in attrs
        ]
        chunks = plan_bucket_chunks(
            [pair.length for pair in halves],
            microbatch_size=3,
            bucket_granularity=granularity,
        )
        plan = plan_microbatches(
            sequential, microbatch_size=3, bucket_granularity=granularity
        )
        assert [chunk for _, chunk in chunks] == [list(mb.indices) for mb in plan]
        for (padded, chunk), microbatch in zip(chunks, plan):
            assembled = plane.assemble([halves[i] for i in chunk], pad_to=padded)
            np.testing.assert_array_equal(
                assembled.input_ids, microbatch.batch.input_ids
            )
            np.testing.assert_array_equal(
                assembled.segment_ids, microbatch.batch.segment_ids
            )
            np.testing.assert_array_equal(
                assembled.attention_mask, microbatch.batch.attention_mask
            )

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.lists(word_st, max_size=10), min_size=1, max_size=6),
        st.integers(min_value=4, max_value=40),
    )
    def test_encode_singles_bit_exact(self, tokenizer, sentences, max_length):
        batched = tokenizer.encode_singles(sentences, max_length=max_length)
        for sentence, fast in zip(sentences, batched):
            reference = tokenizer.encode_single(list(sentence), max_length=max_length)
            np.testing.assert_array_equal(fast.input_ids, reference.input_ids)
            np.testing.assert_array_equal(fast.segment_ids, reference.segment_ids)
            np.testing.assert_array_equal(fast.attention_mask, reference.attention_mask)
            assert encoded_length(fast) == encoded_length(reference)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.lists(word_st, min_size=1, max_size=10), min_size=1, max_size=6),
        st.integers(min_value=4, max_value=40),
    )
    def test_assemble_singles_bit_exact(self, tokenizer, sentences, max_length):
        plane = make_plane(tokenizer, max_length=max_length)
        id_rows = [plane.tokens.ids_for_words(tuple(words)) for words in sentences]
        batch = plane.assemble_singles(id_rows)
        reference = trim_encoded(
            stack_encoded(
                [
                    tokenizer.encode_single(list(words), max_length=max_length)
                    for words in sentences
                ]
            )
        )
        np.testing.assert_array_equal(batch.input_ids, reference.input_ids)
        np.testing.assert_array_equal(batch.segment_ids, reference.segment_ids)
        np.testing.assert_array_equal(batch.attention_mask, reference.attention_mask)

    def test_assemble_rejects_narrow_pad(self, tokenizer):
        plane = make_plane(tokenizer)
        halves = plane.halves("product_name", "the name", "brand_name", "")
        with pytest.raises(ValueError, match="drops real tokens"):
            plane.assemble([halves], pad_to=4)

    def test_assemble_rejects_empty(self, tokenizer):
        plane = make_plane(tokenizer)
        with pytest.raises(ValueError, match="empty"):
            plane.assemble([])


# -- encoded_length / REPRO_CHECKS ---------------------------------------------


class TestEncodedLength:
    def test_precomputed_length_served(self, tokenizer):
        encoded = tokenizer.encode_pair(["price"], ["amount"], max_length=16)
        assert encoded.length is not None
        assert len(encoded) == encoded.length
        assert encoded_length(encoded) == int(encoded.attention_mask.sum())

    def test_checks_catch_mismatch(self, tokenizer, monkeypatch):
        encoded = tokenizer.encode_pair(["price"], ["amount"], max_length=16)
        lying = EncodedPair(
            input_ids=encoded.input_ids,
            segment_ids=encoded.segment_ids,
            attention_mask=encoded.attention_mask,
            length=encoded.length + 1,
        )
        monkeypatch.delenv("REPRO_CHECKS", raising=False)
        assert encoded_length(lying) == encoded.length + 1  # trusted when off
        monkeypatch.setenv("REPRO_CHECKS", "1")
        with pytest.raises(AssertionError, match="disagrees"):
            encoded_length(lying)


# -- LRU / pool / token store --------------------------------------------------


class TestLruDict:
    def test_eviction_order_and_counters(self):
        lru = LruDict(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh a
        lru.put("c", 3)  # evicts b
        assert lru.get("b") is None
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        assert lru.evictions == 1
        assert lru.hits == 3
        assert lru.misses == 1
        assert len(lru) == 2

    def test_pop(self):
        lru = LruDict(4)
        lru.put("a", 1)
        assert lru.pop("a") is True
        assert lru.pop("a") is False

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LruDict(0)


class TestBatchBufferPool:
    def test_reuses_released_buffer(self):
        pool = BatchBufferPool()
        first = pool.acquire(4, 16)
        pool.release(first)
        second = pool.acquire(4, 16)
        assert second is first
        assert pool.stats.pool_hits == 1
        assert pool.stats.pool_misses == 1

    def test_shape_mismatch_allocates(self):
        pool = BatchBufferPool()
        pool.release(pool.acquire(4, 16))
        other = pool.acquire(4, 24)
        assert other.shape == (3, 4, 24)
        assert pool.stats.pool_misses == 2

    def test_byte_bound_drops_excess(self):
        pool = BatchBufferPool(max_bytes=0)
        buffer = pool.acquire(4, 16)
        pool.release(buffer)
        assert pool.pooled_bytes == 0

    def test_release_ignores_foreign_arrays(self, tokenizer):
        plane = make_plane(tokenizer)
        encoded = tokenizer.encode_pair(["price"], ["amount"], max_length=16)
        plane.release(stack_encoded([encoded]))  # not pool-backed; no-op
        plane.release(encoded)  # 1-D; no-op

    def test_pooled_assembly_roundtrip(self, tokenizer):
        plane = make_plane(tokenizer)
        halves = [plane.halves("product_name", "", "brand_name", "")]
        batch = plane.assemble(halves)
        plane.release(batch)
        again = plane.assemble(halves)
        assert plane.stats.pool_hits == 1
        np.testing.assert_array_equal(batch.input_ids, again.input_ids)


class TestAttributeTokenStore:
    def test_hit_miss_counters(self, tokenizer):
        store = AttributeTokenStore(tokenizer, capacity=8)
        first = store.ids_for("product_name", "the name")
        second = store.ids_for("product_name", "the name")
        np.testing.assert_array_equal(first, second)
        assert store.stats.token_cache_misses == 1
        assert store.stats.token_cache_hits == 1

    def test_content_addressing_differs_on_text(self, tokenizer):
        assert token_key("a", "b") != token_key("a", "c")
        assert token_key("ab", "") != token_key("a", "b")

    def test_lru_bound(self, tokenizer):
        store = AttributeTokenStore(tokenizer, capacity=2)
        for name in ("a", "b", "c"):
            store.ids_for(name, "")
        assert len(store) == 2
        assert store.evictions == 1

    def test_arrays_are_readonly(self, tokenizer):
        store = AttributeTokenStore(tokenizer, capacity=8)
        ids = store.ids_for("product_name", "")
        with pytest.raises(ValueError):
            ids[0] = 0

    def test_persistence_roundtrip(self, tokenizer, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        stats = EncodeStats()
        writer = AttributeTokenStore(
            tokenizer, capacity=64, cache_token="tok-test", stats=stats
        )
        expected = writer.ids_for("product_name", "the name of the product")
        assert writer.save_persisted(force=True)

        reader = AttributeTokenStore(tokenizer, capacity=64, cache_token="tok-test")
        assert reader.load_persisted() == 1
        recovered = reader.ids_for("product_name", "the name of the product")
        np.testing.assert_array_equal(recovered, expected)
        assert reader.stats.token_cache_misses == 0  # served from disk block

    def test_persistence_keyed_on_vocab(self, tokenizer, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        writer = AttributeTokenStore(tokenizer, capacity=64, cache_token="tok-test")
        writer.ids_for("product_name", "")
        writer.save_persisted(force=True)
        other_vocab = build_vocab(CORPUS + [["extra", "tokens"]], target_size=140)
        reader = AttributeTokenStore(
            WordPieceTokenizer(other_vocab), capacity=64, cache_token="tok-test"
        )
        assert reader.load_persisted() == 0  # different vocab, different key


# -- engine fast path ----------------------------------------------------------


class TestScoreHalvesParity:
    def test_matches_score_encoded(self, tiny_artifacts, source_schema, target_schema):
        from repro.engine import EngineConfig

        # persist_scores off: otherwise the second featurizer would serve
        # the first's persisted block (same weights + digest-parity
        # fingerprints) and never exercise assembly at all.
        engine_config = EngineConfig(persist_scores=False)
        plain = BertFeaturizer(
            tiny_artifacts.tokenizer,
            tiny_artifacts.bert,
            BertFeaturizerConfig(max_length=24, seed=0, use_encode_plane=False),
            engine_config=engine_config,
        )
        planed = BertFeaturizer(
            tiny_artifacts.tokenizer,
            tiny_artifacts.bert,
            BertFeaturizerConfig(max_length=24, seed=0, persist_tokens=False),
            engine_config=engine_config,
        )
        try:
            pairs = [
                make_pair_view(source_schema, target_schema, source_ref, target_ref)
                for source_ref, _ in source_schema.iter_attributes()
                for target_ref, _ in target_schema.iter_attributes()
            ]
            baseline = plain.score_pairs(pairs)
            fast = planed.score_pairs(pairs)
            np.testing.assert_allclose(fast, baseline, atol=1e-8)
            # Identical fingerprints: the plane path must hit the score
            # cache the sequential path populated, and vice versa.
            rescored = planed.score_pairs(pairs)
            np.testing.assert_array_equal(rescored, fast)
            assert planed.engine.stats.pairs_skipped >= len(pairs)
            assert planed.encode_plane.stats.batches_assembled > 0
        finally:
            plain.close()
            planed.close()


# -- drift invalidation contract -----------------------------------------------


class TestDriftInvalidation:
    def _featurizer(self, tiny_artifacts):
        return BertFeaturizer(
            tiny_artifacts.tokenizer,
            tiny_artifacts.bert,
            BertFeaturizerConfig(max_length=24, seed=0, persist_tokens=False),
        )

    def test_rename_drops_pair_and_token_entries(
        self, tiny_artifacts, source_schema, target_schema
    ):
        featurizer = self._featurizer(tiny_artifacts)
        try:
            source_ref = AttributeRef("Orders", "qty")
            target_ref = AttributeRef("Transaction", "quantity")
            pair = make_pair_view(source_schema, target_schema, source_ref, target_ref)
            featurizer.score_pairs([pair])
            assert len(featurizer.encode_plane.pair_cache) == 1

            dropped = featurizer.invalidate_refs({source_ref})
            assert dropped >= 1
            assert len(featurizer.encode_plane.pair_cache) == 0
            # The retired ref's token entry is gone from the store...
            assert source_ref not in featurizer._ref_token_keys
            # ...and re-scoring under the renamed text derives fresh tokens.
            renamed = make_pair_view(
                source_schema, target_schema, source_ref, target_ref
            )
            misses_before = featurizer.encode_plane.stats.token_cache_misses
            featurizer.score_pairs([renamed])
            assert featurizer.encode_plane.stats.token_cache_misses > misses_before
        finally:
            featurizer.close()

    def test_stale_tokens_structurally_impossible(self, tiny_artifacts):
        """Content addressing: changed text can never be served stale tokens."""
        featurizer = self._featurizer(tiny_artifacts)
        try:
            plane = featurizer.encode_plane
            before = plane.tokens.ids_for("quantity", "the quantity purchased")
            after = plane.tokens.ids_for("quantity_sold", "the quantity purchased")
            assert not np.array_equal(before, after)
            # Even WITHOUT any invalidation sweep, the renamed text keys a
            # different entry -- the stale-token bug class cannot occur.
            assert token_key("quantity", "x") != token_key("quantity_sold", "x")
        finally:
            featurizer.close()

    def test_untouched_refs_survive(self, tiny_artifacts, source_schema, target_schema):
        featurizer = self._featurizer(tiny_artifacts)
        try:
            refs = [
                (AttributeRef("Orders", "qty"), AttributeRef("Transaction", "quantity")),
                (AttributeRef("Item", "ean"), AttributeRef("Transaction", "quantity")),
            ]
            pairs = [
                make_pair_view(source_schema, target_schema, s, t) for s, t in refs
            ]
            featurizer.score_pairs(pairs)
            featurizer.invalidate_refs({AttributeRef("Orders", "qty")})
            assert len(featurizer.encode_plane.pair_cache) == 1
            assert pairs[1].key in featurizer.encode_plane.pair_cache
        finally:
            featurizer.close()
