"""QuantizedMiniBert: the int8 encoder mirrors the float32 eval forward."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lm.bert import MiniBert, QuantizedMiniBert
from repro.lm.config import BertConfig
from repro.lm.tokenizer import EncodedPair

CONFIG = BertConfig(
    vocab_size=80,
    hidden_size=32,
    num_layers=2,
    num_heads=2,
    intermediate_size=64,
    max_position=32,
)


def make_batch(rows: int = 6, length: int = 14, seed: int = 7) -> EncodedPair:
    rng = np.random.default_rng(seed)
    ids = rng.integers(5, 80, size=(rows, length)).astype(np.int64)
    ids[:, 0] = 1
    segments = np.zeros((rows, length), dtype=np.int64)
    segments[:, length // 2 :] = 1
    mask = np.ones((rows, length), dtype=np.int64)
    mask[0, -3:] = 0  # one row with padding, so masking is exercised
    return EncodedPair(input_ids=ids, segment_ids=segments, attention_mask=mask)


@pytest.fixture(scope="module")
def float_model():
    model = MiniBert(CONFIG, seed=1)
    model.eval()
    return model


@pytest.fixture(scope="module")
def quant_model(float_model):
    return QuantizedMiniBert(float_model)


class TestQuantizedMiniBert:
    def test_hidden_states_close_to_float(self, float_model, quant_model):
        batch = make_batch()
        hidden_f, pooled_f = float_model.forward(batch)
        hidden_q, pooled_q = quant_model.forward(batch)
        assert hidden_q.shape == hidden_f.shape
        assert hidden_q.dtype == np.float32
        # Hidden states are LayerNormed to unit scale; int8 weights plus
        # LUT nonlinearities land within a few percent.
        assert np.abs(hidden_q - hidden_f).max() < 0.25
        assert np.abs(pooled_q - pooled_f).max() < 0.25

    @pytest.mark.parametrize("packing", ["fold", "accum"])
    def test_packings_agree(self, float_model, quant_model, packing):
        batch = make_batch()
        quant_model.packing = packing
        hidden, pooled = quant_model.forward(batch)
        quant_model.packing = "fold"
        assert np.isfinite(hidden).all() and np.isfinite(pooled).all()

    def test_embeddings_are_shared_not_copied(self, float_model, quant_model):
        # Embeddings/norms stay float and are referenced live: an in-place
        # embedding update is visible without rebuilding the quant wrapper.
        assert (
            quant_model.token_embedding.table.value
            is float_model.token_embedding.table.value
        )

    def test_quant_parameters_exclude_float_weights(self, float_model, quant_model):
        from repro.nn.serialize import flat_tensors

        names = [name for name, _ in flat_tensors(quant_model)]
        # Only quant artifacts register as parameters (the publish payload);
        # no float attention/FFN weights are duplicated.
        assert names, "quant wrapper must expose parameters"
        assert all(
            name.rsplit(".", 1)[-1] in {"weight_q", "scale", "bias"}
            for name in names
        ), names

    def test_ranking_is_preserved_on_random_batch(self, float_model, quant_model):
        batch = make_batch(rows=12, seed=11)
        _, pooled_f = float_model.forward(batch)
        _, pooled_q = quant_model.forward(batch)
        # Pooled outputs should correlate strongly even at int8 resolution.
        flat_f = pooled_f.ravel()
        flat_q = pooled_q.ravel()
        correlation = np.corrcoef(flat_f, flat_q)[0, 1]
        assert correlation > 0.99
