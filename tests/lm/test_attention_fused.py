"""Fused-QKV attention: parity with the unfused reference and migration.

The fused layout must be an implementation detail: identical math to the
seed-era three-GEMM attention (forward, input gradients and packed parameter
gradients, all to 1e-6), verified against central differences, and able to
load checkpoints written under the old ``query``/``key``/``value`` layout.
"""

import numpy as np
import pytest

from repro.lm import BertConfig, MiniBert, MultiHeadSelfAttention, UnfusedAttentionReference
from repro.lm.tokenizer import EncodedPair
from repro.nn import load_state_dict, state_dict


CONFIG = BertConfig(
    vocab_size=50,
    hidden_size=16,
    num_layers=1,
    num_heads=2,
    intermediate_size=32,
    max_position=12,
    dropout=0.0,
    attention_dropout=0.0,
)


@pytest.fixture()
def pair():
    """(fused, unfused-reference) attention modules with identical weights."""
    fused = MultiHeadSelfAttention(CONFIG, np.random.default_rng(3))
    fused.eval()
    reference = UnfusedAttentionReference(fused)
    reference.eval()
    return fused, reference


@pytest.fixture()
def inputs(rng):
    x = rng.standard_normal((3, 7, CONFIG.hidden_size)).astype(np.float32)
    mask = np.ones((3, 7), dtype=np.float32)
    mask[0, 5:] = 0.0  # one row with padding, to exercise the mask path
    mask[2, 3:] = 0.0
    return x, mask


class TestFusedParity:
    def test_forward_matches_unfused(self, pair, inputs):
        fused, reference = pair
        x, mask = inputs
        np.testing.assert_allclose(
            fused.forward(x, mask), reference.forward(x, mask), atol=1e-6, rtol=0
        )

    def test_backward_input_grad_matches_unfused(self, pair, inputs, rng):
        fused, reference = pair
        x, mask = inputs
        grad_out = rng.standard_normal(x.shape).astype(np.float32)
        fused.forward(x, mask)
        reference.forward(x, mask)
        fused.zero_grad()
        reference.zero_grad()
        np.testing.assert_allclose(
            fused.backward(grad_out.copy()),
            reference.backward(grad_out.copy()),
            atol=1e-6,
            rtol=0,
        )

    def test_backward_param_grads_match_unfused(self, pair, inputs, rng):
        fused, reference = pair
        x, mask = inputs
        grad_out = rng.standard_normal(x.shape).astype(np.float32)
        fused.forward(x, mask)
        reference.forward(x, mask)
        fused.zero_grad()
        reference.zero_grad()
        fused.backward(grad_out.copy())
        reference.backward(grad_out.copy())

        packed_weight, packed_bias = reference.packed_qkv_grads()
        np.testing.assert_allclose(fused.qkv.weight.grad, packed_weight, atol=1e-6, rtol=0)
        np.testing.assert_allclose(fused.qkv.bias.grad, packed_bias, atol=1e-6, rtol=0)
        np.testing.assert_allclose(
            fused.output.weight.grad, reference.output.weight.grad, atol=1e-6, rtol=0
        )
        np.testing.assert_allclose(
            fused.output.bias.grad, reference.output.bias.grad, atol=1e-6, rtol=0
        )

    def test_initial_weights_match_seed_layout(self, pair):
        """Fusion must not change the initial model: packed blocks equal the
        draws the three separate linears historically made."""
        fused, reference = pair
        hidden = CONFIG.hidden_size
        for index, linear in enumerate((reference.query, reference.key, reference.value)):
            block = fused.qkv.weight.value[:, index * hidden : (index + 1) * hidden]
            np.testing.assert_array_equal(block, linear.weight.value)


class TestNumericalGradient:
    def test_fused_attention_gradcheck(self, pair, inputs):
        fused, _ = pair
        x, mask = inputs

        def loss() -> float:
            return float((fused.forward(x, mask).astype(np.float64) ** 2).sum() / 2)

        out = fused.forward(x, mask)
        fused.zero_grad()
        grad_x = fused.backward(out.copy())

        def numeric(array, index, eps=1e-2):
            original = float(array[index])
            array[index] = original + eps
            plus = loss()
            array[index] = original - eps
            minus = loss()
            array[index] = original
            return (plus - minus) / (2 * eps)

        # Spot-check one entry in each Q/K/V block of the packed weight, the
        # bias, the output projection and the input gradient.
        hidden = CONFIG.hidden_size
        for column in (0, hidden + 1, 2 * hidden + 2):
            index = (1, column)
            assert fused.qkv.weight.grad[index] == pytest.approx(
                numeric(fused.qkv.weight.value, index), rel=5e-2, abs=1e-3
            )
        assert fused.qkv.bias.grad[(hidden,)] == pytest.approx(
            numeric(fused.qkv.bias.value, (hidden,)), rel=5e-2, abs=1e-3
        )
        index = (2, 3)
        assert fused.output.weight.grad[index] == pytest.approx(
            numeric(fused.output.weight.value, index), rel=5e-2, abs=1e-3
        )
        index = (1, 2, 4)
        assert grad_x[index] == pytest.approx(numeric(x, index), rel=5e-2, abs=1e-3)


class TestStateGuards:
    def test_backward_before_forward_raises(self):
        fused = MultiHeadSelfAttention(CONFIG, np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="backward before forward"):
            fused.backward(np.zeros((1, 2, CONFIG.hidden_size), dtype=np.float32))


def _legacy_state(model: MiniBert) -> dict:
    """Rewrite a current state dict into the pre-fusion checkpoint layout."""
    state = state_dict(model)
    hidden = model.config.hidden_size
    for layer in range(model.config.num_layers):
        prefix = f"block{layer}.attention."
        weight = state.pop(f"{prefix}qkv.weight")
        bias = state.pop(f"{prefix}qkv.bias")
        for index, name in enumerate(("query", "key", "value")):
            block = slice(index * hidden, (index + 1) * hidden)
            state[f"{prefix}{name}.weight"] = weight[:, block].copy()
            state[f"{prefix}{name}.bias"] = bias[block].copy()
    return state


class TestCheckpointMigration:
    def test_legacy_layout_loads_and_matches(self):
        source = MiniBert(CONFIG, seed=5)
        legacy = _legacy_state(source)
        assert "block0.attention.query.weight" in legacy

        restored = MiniBert(CONFIG, seed=9)  # different init, fully overwritten
        load_state_dict(restored, legacy)
        source.eval()
        restored.eval()

        rng = np.random.default_rng(11)
        batch = EncodedPair(
            input_ids=rng.integers(5, CONFIG.vocab_size, size=(2, 8)),
            segment_ids=np.zeros((2, 8), dtype=np.int64),
            attention_mask=np.ones((2, 8), dtype=np.int64),
        )
        hidden_a, pooled_a = source.forward(batch)
        hidden_b, pooled_b = restored.forward(batch)
        np.testing.assert_array_equal(hidden_a, hidden_b)
        np.testing.assert_array_equal(pooled_a, pooled_b)

    def test_legacy_npz_roundtrip(self, tmp_path):
        source = MiniBert(CONFIG, seed=5)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **_legacy_state(source))

        from repro.nn import load_module

        restored = MiniBert(CONFIG, seed=9)
        load_module(restored, path)
        np.testing.assert_array_equal(
            restored.blocks[0].attention.qkv.weight.value,
            source.blocks[0].attention.qkv.weight.value,
        )

    def test_current_layout_unaffected_by_migration(self):
        source = MiniBert(CONFIG, seed=5)
        state = state_dict(source)
        restored = MiniBert(CONFIG, seed=9)
        load_state_dict(restored, state)
        np.testing.assert_array_equal(
            restored.blocks[0].attention.qkv.weight.value,
            source.blocks[0].attention.qkv.weight.value,
        )
