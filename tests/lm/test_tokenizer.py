"""Tests for WordPiece tokenisation and pair encoding."""

import numpy as np
import pytest

from repro.lm import WordPieceTokenizer, build_vocab, stack_encoded


@pytest.fixture(scope="module")
def tokenizer():
    corpus = [
        ["order", "identifier", "quantity", "discount"],
        ["product", "name", "amount", "percentage"],
    ] * 5
    return WordPieceTokenizer(build_vocab(corpus, target_size=300))


class TestTokenizeWord:
    def test_known_word_is_single_piece(self, tokenizer):
        assert tokenizer.tokenize_word("order") == ["order"]

    def test_unknown_word_splits_into_pieces(self, tokenizer):
        # "ordername" is unseen but built from in-alphabet characters.
        pieces = tokenizer.tokenize_word("ordername")
        assert len(pieces) >= 2
        assert pieces[0] == "order"
        assert all(piece.startswith("##") for piece in pieces[1:])

    def test_out_of_alphabet_characters_become_unk(self, tokenizer):
        assert tokenizer.tokenize_word("éé") == ["[UNK]"]
        # "x" never occurs in the training corpus, so it has no piece.
        assert tokenizer.tokenize_word("orderx") == ["[UNK]"]

    def test_empty_word(self, tokenizer):
        assert tokenizer.tokenize_word("") == []

    def test_overlong_word_is_unk(self, tokenizer):
        assert tokenizer.tokenize_word("a" * 100) == ["[UNK]"]


class TestEncodePair:
    def test_structure(self, tokenizer):
        encoded = tokenizer.encode_pair(["order"], ["product"], max_length=10)
        vocab = tokenizer.vocab
        ids = encoded.input_ids.tolist()
        assert ids[0] == vocab.cls_id
        assert ids.count(vocab.sep_id) == 2
        assert len(ids) == 10
        assert encoded.segment_ids.tolist()[:3] == [0, 0, 0]
        assert encoded.attention_mask.sum() == 5  # cls + 2 words + 2 sep

    def test_segments_split_at_first_sep(self, tokenizer):
        encoded = tokenizer.encode_pair(["order"], ["product"], max_length=10)
        sep_positions = np.flatnonzero(
            encoded.input_ids == tokenizer.vocab.sep_id
        )
        first_sep = int(sep_positions[0])
        assert (encoded.segment_ids[: first_sep + 1] == 0).all()
        second_sep = int(sep_positions[1])
        assert (encoded.segment_ids[first_sep + 1 : second_sep + 1] == 1).all()

    def test_truncation_prefers_longer_span(self, tokenizer):
        encoded = tokenizer.encode_pair(
            ["order"] * 20, ["product"], max_length=12
        )
        assert len(encoded.input_ids) == 12
        # The single-word B span must survive truncation.
        product_id = tokenizer.vocab.id_of("product")
        assert product_id in encoded.input_ids.tolist()

    def test_encode_single(self, tokenizer):
        encoded = tokenizer.encode_single(["order", "product"], max_length=8)
        ids = encoded.input_ids.tolist()
        assert ids[0] == tokenizer.vocab.cls_id
        assert ids.count(tokenizer.vocab.sep_id) == 1
        assert (encoded.segment_ids == 0).all()

    def test_encode_attribute_pair_includes_descriptions(self, tokenizer):
        with_desc = tokenizer.encode_attribute_pair(
            "order", "the order quantity", "product", "", max_length=16
        )
        without_desc = tokenizer.encode_attribute_pair(
            "order", "", "product", "", max_length=16
        )
        assert with_desc.attention_mask.sum() > without_desc.attention_mask.sum()


class TestStackEncoded:
    def test_stacks_to_batch(self, tokenizer):
        pairs = [
            tokenizer.encode_pair(["order"], ["product"], max_length=8)
            for _ in range(3)
        ]
        batch = stack_encoded(pairs)
        assert batch.input_ids.shape == (3, 8)
        assert batch.segment_ids.shape == (3, 8)
        assert batch.attention_mask.shape == (3, 8)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stack_encoded([])
