"""Tests for the WordPiece vocabulary builder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm import SPECIAL_TOKENS, WordPieceVocab, build_vocab


def small_corpus():
    return [
        ["order", "identifier"],
        ["order", "date"],
        ["order", "total", "amount"],
        ["product", "identifier"],
        ["product", "name"],
    ] * 3


class TestBuildVocab:
    def test_specials_come_first(self):
        vocab = build_vocab(small_corpus(), target_size=100)
        assert vocab.tokens[:5] == SPECIAL_TOKENS

    def test_contains_all_characters(self):
        vocab = build_vocab(small_corpus(), target_size=100)
        for char in "orderproductnamountidentifie":
            assert char in vocab or f"##{char}" in vocab

    def test_merges_frequent_words(self):
        vocab = build_vocab(small_corpus(), target_size=300)
        # "order" appears 9 times; BPE should have merged it to a full token.
        assert "order" in vocab

    def test_respects_target_size(self):
        vocab = build_vocab(small_corpus(), target_size=60)
        assert len(vocab) <= 60 + 30  # alphabet may exceed the budget slightly

    def test_deterministic(self):
        a = build_vocab(small_corpus(), target_size=100)
        b = build_vocab(small_corpus(), target_size=100)
        assert a.tokens == b.tokens


class TestWordPieceVocab:
    def test_special_ids(self):
        vocab = build_vocab(small_corpus(), target_size=100)
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.cls_id == 2
        assert vocab.sep_id == 3
        assert vocab.mask_id == 4
        assert vocab.special_ids() == {0, 1, 2, 3, 4}

    def test_id_round_trip(self):
        vocab = build_vocab(small_corpus(), target_size=100)
        for token in vocab.tokens:
            assert vocab.token_of(vocab.id_of(token)) == token

    def test_unknown_maps_to_unk(self):
        vocab = build_vocab(small_corpus(), target_size=100)
        assert vocab.id_of("zzzzz_not_there") == vocab.unk_id

    def test_requires_special_prefix(self):
        with pytest.raises(ValueError):
            WordPieceVocab(["foo", "bar"])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            WordPieceVocab(SPECIAL_TOKENS + ["a", "a"])

    def test_save_load_round_trip(self, tmp_path):
        vocab = build_vocab(small_corpus(), target_size=100)
        path = tmp_path / "vocab.json"
        vocab.save(path)
        assert WordPieceVocab.load(path).tokens == vocab.tokens


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.lists(st.from_regex(r"[a-z]{1,8}", fullmatch=True), min_size=1, max_size=6),
        min_size=1,
        max_size=20,
    )
)
def test_property_vocab_always_tokenizable(corpus):
    """Every corpus word must be representable by the learned vocabulary."""
    from repro.lm import WordPieceTokenizer

    vocab = build_vocab(corpus, target_size=200)
    tokenizer = WordPieceTokenizer(vocab)
    for sentence in corpus:
        for word in sentence:
            pieces = tokenizer.tokenize_word(word)
            assert pieces
            assert "[UNK]" not in pieces
