"""Property-based tests for WordPiece pair encoding and batch stacking.

Random identifier pairs must encode without crashing at any ``max_length``,
truncation must never drop [CLS] or either [SEP], and ``stack_encoded`` must
be permutation-equivariant (the engine's bucketing relies on it).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm.tokenizer import WordPieceTokenizer, encoded_length, stack_encoded
from repro.lm.vocab import build_vocab
from repro.text.tokenize import split_identifier

CORPUS = [
    ["product", "item", "price", "amount", "discount", "quantity"],
    ["transaction", "date", "identifier", "brand", "name", "status"],
    ["european", "article", "number", "customer", "order", "line"],
]


@pytest.fixture(scope="module")
def tokenizer() -> WordPieceTokenizer:
    return WordPieceTokenizer(build_vocab(CORPUS, target_size=120))


word_lists = st.lists(
    st.text(max_size=24).map(lambda s: " ".join(split_identifier(s)) or "x"),
    max_size=8,
)


@settings(max_examples=80, deadline=None)
@given(word_lists, word_lists, st.integers(min_value=4, max_value=48))
def test_encode_pair_shape_and_specials(tokenizer, words_a, words_b, max_length):
    encoded = tokenizer.encode_pair(words_a, words_b, max_length=max_length)
    vocab = tokenizer.vocab

    assert encoded.input_ids.shape == (max_length,)
    assert encoded.segment_ids.shape == (max_length,)
    assert encoded.attention_mask.shape == (max_length,)

    length = encoded_length(encoded)
    assert 3 <= length <= max_length
    # Attention is a prefix of ones; padding is all-PAD beyond it.
    assert (encoded.attention_mask[:length] == 1).all()
    assert (encoded.attention_mask[length:] == 0).all()
    assert (encoded.input_ids[length:] == vocab.pad_id).all()

    # Truncation never drops [CLS] or either [SEP].
    assert encoded.input_ids[0] == vocab.cls_id
    assert encoded.input_ids[length - 1] == vocab.sep_id
    real = encoded.input_ids[:length]
    assert (real == vocab.sep_id).sum() == 2
    assert (real == vocab.cls_id).sum() == 1

    # Segments: 0 through the first [SEP], 1 after it (within real tokens).
    first_sep = int(np.flatnonzero(real == vocab.sep_id)[0])
    assert (encoded.segment_ids[: first_sep + 1] == 0).all()
    assert (encoded.segment_ids[first_sep + 1 : length] == 1).all()


@settings(max_examples=80, deadline=None)
@given(word_lists, st.integers(min_value=4, max_value=48))
def test_encode_single_keeps_specials(tokenizer, word_list, max_length):
    encoded = tokenizer.encode_single(word_list, max_length=max_length)
    vocab = tokenizer.vocab
    length = encoded_length(encoded)
    assert encoded.input_ids[0] == vocab.cls_id
    assert encoded.input_ids[length - 1] == vocab.sep_id


@settings(max_examples=40, deadline=None)
@given(
    st.lists(word_lists, min_size=1, max_size=6),
    st.randoms(use_true_random=False),
)
def test_stack_encoded_is_permutation_equivariant(tokenizer, batches, random):
    encoded = [tokenizer.encode_pair(ws, ws, max_length=16) for ws in batches]
    order = list(range(len(encoded)))
    random.shuffle(order)

    stacked = stack_encoded(encoded)
    shuffled = stack_encoded([encoded[i] for i in order])
    np.testing.assert_array_equal(shuffled.input_ids, stacked.input_ids[order])
    np.testing.assert_array_equal(shuffled.segment_ids, stacked.segment_ids[order])
    np.testing.assert_array_equal(shuffled.attention_mask, stacked.attention_mask[order])
