"""Gradient-checked tests for MiniBERT and its building blocks."""

import numpy as np
import pytest

from repro.lm import (
    BertConfig,
    EncodedPair,
    MiniBert,
    MultiHeadSelfAttention,
    TransformerBlock,
    WordPieceTokenizer,
    build_vocab,
    stack_encoded,
)


@pytest.fixture(scope="module")
def config():
    return BertConfig(
        vocab_size=64,
        hidden_size=16,
        num_layers=2,
        num_heads=2,
        intermediate_size=32,
        max_position=16,
        dropout=0.0,
        attention_dropout=0.0,
    )


@pytest.fixture(scope="module")
def tokenizer():
    corpus = [["order", "id"], ["product", "name"], ["tax", "rate"]] * 3
    return WordPieceTokenizer(build_vocab(corpus, target_size=64))


def make_batch(tokenizer, max_length=12):
    return stack_encoded(
        [
            tokenizer.encode_pair(["order"], ["product"], max_length=max_length),
            tokenizer.encode_pair(["tax", "rate"], ["name"], max_length=max_length),
        ]
    )


class TestBertConfig:
    def test_head_dim(self, config):
        assert config.head_dim == 8

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            BertConfig(vocab_size=10, hidden_size=10, num_heads=3)

    def test_dict_round_trip(self, config):
        assert BertConfig.from_dict(config.to_dict()) == config


class TestAttention:
    def test_output_shape_and_grad(self, config, rng):
        attention = MultiHeadSelfAttention(config, rng)
        x = rng.standard_normal((2, 5, 16)).astype(np.float32)
        mask = np.ones((2, 5), dtype=np.float32)
        mask[1, 3:] = 0.0
        out = attention.forward(x, mask)
        assert out.shape == (2, 5, 16)

        def loss():
            return float((attention.forward(x, mask).astype(np.float64) ** 2).sum() / 2)

        out = attention.forward(x, mask)
        attention.zero_grad()
        grad_x = attention.backward(out.copy())

        eps = 1e-2
        original = float(x[0, 1, 2])
        x[0, 1, 2] = original + eps
        plus = loss()
        x[0, 1, 2] = original - eps
        minus = loss()
        x[0, 1, 2] = original
        numeric = (plus - minus) / (2 * eps)
        assert grad_x[0, 1, 2] == pytest.approx(numeric, rel=3e-2, abs=1e-3)

    def test_padding_gets_no_attention(self, config, rng):
        attention = MultiHeadSelfAttention(config, rng)
        x = rng.standard_normal((1, 4, 16)).astype(np.float32)
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        out_masked = attention.forward(x, mask)
        # Changing padded positions must not change unpadded outputs.
        x2 = x.copy()
        x2[0, 2:] = 99.0
        out_changed = attention.forward(x2, mask)
        assert np.allclose(out_masked[0, :2], out_changed[0, :2], atol=1e-4)


class TestTransformerBlock:
    def test_forward_backward_shapes(self, config, rng):
        block = TransformerBlock(config, rng)
        x = rng.standard_normal((2, 6, 16)).astype(np.float32)
        mask = np.ones((2, 6), dtype=np.float32)
        out = block.forward(x, mask)
        assert out.shape == x.shape
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_gradient_check_parameter(self, config, rng):
        block = TransformerBlock(config, rng)
        x = rng.standard_normal((1, 4, 16)).astype(np.float32)
        mask = np.ones((1, 4), dtype=np.float32)

        def loss():
            return float((block.forward(x, mask).astype(np.float64) ** 2).sum() / 2)

        out = block.forward(x, mask)
        block.zero_grad()
        block.backward(out.copy())
        parameter = block.parameters()["intermediate.weight"]
        eps = 1e-2
        original = float(parameter.value[0, 0])
        parameter.value[0, 0] = original + eps
        plus = loss()
        parameter.value[0, 0] = original - eps
        minus = loss()
        parameter.value[0, 0] = original
        numeric = (plus - minus) / (2 * eps)
        assert parameter.grad[0, 0] == pytest.approx(numeric, rel=3e-2, abs=1e-3)


class TestMiniBert:
    def test_forward_shapes(self, config, tokenizer):
        model = MiniBert(config, seed=0)
        model.eval()
        batch = make_batch(tokenizer)
        hidden, pooled = model.forward(batch)
        assert hidden.shape == (2, 12, 16)
        assert pooled.shape == (2, 16)
        assert model.last_embedding_output is not None
        assert model.last_embedding_output.shape == hidden.shape

    def test_rejects_overlong_sequence(self, config, tokenizer):
        model = MiniBert(config, seed=0)
        batch = make_batch(tokenizer, max_length=32)
        with pytest.raises(ValueError, match="max_position"):
            model.forward(batch)

    def test_rejects_unbatched_input(self, config, tokenizer):
        model = MiniBert(config, seed=0)
        single = tokenizer.encode_pair(["order"], ["product"], max_length=12)
        # The message must name the shape it got and the fix.
        with pytest.raises(
            ValueError, match=r"got\s+shape \(12,\).*wrap single pairs with stack_encoded"
        ):
            model.forward(single)

    def test_rejects_three_dimensional_input(self, config, tokenizer):
        model = MiniBert(config, seed=0)
        single = tokenizer.encode_pair(["order"], ["product"], max_length=12)
        lifted = EncodedPair(
            input_ids=single.input_ids[None, None, :],
            segment_ids=single.segment_ids[None, None, :],
            attention_mask=single.attention_mask[None, None, :],
        )
        with pytest.raises(ValueError, match="stack_encoded"):
            model.forward(lifted)

    def test_full_gradient_check_pooled(self, config, tokenizer):
        model = MiniBert(config, seed=0)
        model.eval()
        batch = make_batch(tokenizer)

        def loss():
            _, pooled = model.forward(batch)
            return float((pooled.astype(np.float64) ** 2).sum() / 2)

        _, pooled = model.forward(batch)
        model.zero_grad()
        model.backward(grad_pooled=pooled.copy())
        parameters = model.parameters()
        for name in ("token_embedding.table", "block1.attention.qkv.weight", "pooler.bias"):
            parameter = parameters[name]
            # Pick a token id actually present so the embedding grad is nonzero.
            index = (int(batch.input_ids[0, 1]), 0) if "table" in name else (
                (0, 0) if parameter.value.ndim == 2 else (0,)
            )
            eps = 1e-2
            original = float(parameter.value[index])
            parameter.value[index] = original + eps
            plus = loss()
            parameter.value[index] = original - eps
            minus = loss()
            parameter.value[index] = original
            numeric = (plus - minus) / (2 * eps)
            assert parameter.grad[index] == pytest.approx(
                numeric, rel=5e-2, abs=2e-3
            ), name

    def test_backward_requires_a_gradient(self, config, tokenizer):
        model = MiniBert(config, seed=0)
        model.eval()
        model.forward(make_batch(tokenizer))
        with pytest.raises(ValueError):
            model.backward()

    def test_deterministic_forward(self, config, tokenizer):
        model = MiniBert(config, seed=0)
        model.eval()
        batch = make_batch(tokenizer)
        hidden_a, _ = model.forward(batch)
        hidden_b, _ = model.forward(batch)
        assert np.allclose(hidden_a, hidden_b)
