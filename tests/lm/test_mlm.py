"""Tests for masked-LM masking and pre-training."""

import numpy as np
import pytest

from repro.lm import (
    BertConfig,
    IGNORE_INDEX,
    MiniBert,
    WordPieceTokenizer,
    build_vocab,
    mask_tokens,
    pretrain_mlm,
    stack_encoded,
)


@pytest.fixture(scope="module")
def setup():
    corpus = [
        ["order", "identifier", "number"],
        ["product", "name", "text"],
        ["order", "total", "amount"],
        ["discount", "percentage", "value"],
    ] * 6
    vocab = build_vocab(corpus, target_size=120)
    tokenizer = WordPieceTokenizer(vocab)
    config = BertConfig(
        vocab_size=len(vocab),
        hidden_size=16,
        num_layers=1,
        num_heads=2,
        intermediate_size=32,
        max_position=16,
    )
    return corpus, tokenizer, config


class TestMaskTokens:
    def test_specials_never_masked(self, setup, rng):
        corpus, tokenizer, _ = setup
        batch = stack_encoded(
            [tokenizer.encode_single(list(s), max_length=12) for s in corpus[:8]]
        )
        masked, labels = mask_tokens(batch, tokenizer.vocab, rng, mask_probability=1.0)
        specials = tokenizer.vocab.special_ids() - {tokenizer.vocab.mask_id}
        original_special = np.isin(batch.input_ids, sorted(specials))
        assert (labels[original_special] == IGNORE_INDEX).all()

    def test_labels_match_original_ids(self, setup, rng):
        corpus, tokenizer, _ = setup
        batch = stack_encoded(
            [tokenizer.encode_single(list(s), max_length=12) for s in corpus[:8]]
        )
        _, labels = mask_tokens(batch, tokenizer.vocab, rng, mask_probability=0.5)
        selected = labels != IGNORE_INDEX
        assert (labels[selected] == batch.input_ids[selected]).all()

    def test_original_batch_untouched(self, setup, rng):
        corpus, tokenizer, _ = setup
        batch = stack_encoded(
            [tokenizer.encode_single(list(s), max_length=12) for s in corpus[:4]]
        )
        snapshot = batch.input_ids.copy()
        mask_tokens(batch, tokenizer.vocab, rng, mask_probability=1.0)
        assert np.array_equal(batch.input_ids, snapshot)

    def test_majority_masked_become_mask_token(self, setup):
        corpus, tokenizer, _ = setup
        rng = np.random.default_rng(0)
        batch = stack_encoded(
            [tokenizer.encode_single(list(s), max_length=12) for s in corpus]
        )
        masked, labels = mask_tokens(batch, tokenizer.vocab, rng, mask_probability=1.0)
        selected = labels != IGNORE_INDEX
        mask_fraction = (
            masked.input_ids[selected] == tokenizer.vocab.mask_id
        ).mean()
        assert 0.6 < mask_fraction < 0.95


class TestPretrainMlm:
    def test_loss_decreases(self, setup):
        corpus, tokenizer, config = setup
        model = MiniBert(config, seed=0)
        result = pretrain_mlm(
            model, tokenizer, corpus, epochs=8, batch_size=8, lr=1e-3, max_length=12
        )
        assert result.steps > 0
        first_quarter = np.mean(result.losses[: max(1, len(result.losses) // 4)])
        last_quarter = np.mean(result.losses[-max(1, len(result.losses) // 4) :])
        assert last_quarter < first_quarter

    def test_model_left_in_eval_mode(self, setup):
        corpus, tokenizer, config = setup
        model = MiniBert(config, seed=0)
        pretrain_mlm(model, tokenizer, corpus, epochs=1, max_length=12)
        assert not model.training

    def test_empty_corpus_rejected(self, setup):
        _, tokenizer, config = setup
        model = MiniBert(config, seed=0)
        with pytest.raises(ValueError):
            pretrain_mlm(model, tokenizer, [], epochs=1)
