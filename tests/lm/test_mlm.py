"""Tests for masked-LM masking and pre-training."""

import math

import numpy as np
import pytest

from repro.lm import (
    BertConfig,
    IGNORE_INDEX,
    MiniBert,
    WordPieceTokenizer,
    build_vocab,
    mask_tokens,
    mask_tokens_with_redraw,
    pretrain_mlm,
    stack_encoded,
)
from repro.lm.mlm import MlmHead
from repro.nn import TrainStats, state_dict
from repro.nn.losses import softmax_cross_entropy


@pytest.fixture(scope="module")
def setup():
    corpus = [
        ["order", "identifier", "number"],
        ["product", "name", "text"],
        ["order", "total", "amount"],
        ["discount", "percentage", "value"],
    ] * 6
    vocab = build_vocab(corpus, target_size=120)
    tokenizer = WordPieceTokenizer(vocab)
    config = BertConfig(
        vocab_size=len(vocab),
        hidden_size=16,
        num_layers=1,
        num_heads=2,
        intermediate_size=32,
        max_position=16,
    )
    return corpus, tokenizer, config


class TestMaskTokens:
    def test_specials_never_masked(self, setup, rng):
        corpus, tokenizer, _ = setup
        batch = stack_encoded(
            [tokenizer.encode_single(list(s), max_length=12) for s in corpus[:8]]
        )
        masked, labels = mask_tokens(batch, tokenizer.vocab, rng, mask_probability=1.0)
        specials = tokenizer.vocab.special_ids() - {tokenizer.vocab.mask_id}
        original_special = np.isin(batch.input_ids, sorted(specials))
        assert (labels[original_special] == IGNORE_INDEX).all()

    def test_labels_match_original_ids(self, setup, rng):
        corpus, tokenizer, _ = setup
        batch = stack_encoded(
            [tokenizer.encode_single(list(s), max_length=12) for s in corpus[:8]]
        )
        _, labels = mask_tokens(batch, tokenizer.vocab, rng, mask_probability=0.5)
        selected = labels != IGNORE_INDEX
        assert (labels[selected] == batch.input_ids[selected]).all()

    def test_original_batch_untouched(self, setup, rng):
        corpus, tokenizer, _ = setup
        batch = stack_encoded(
            [tokenizer.encode_single(list(s), max_length=12) for s in corpus[:4]]
        )
        snapshot = batch.input_ids.copy()
        mask_tokens(batch, tokenizer.vocab, rng, mask_probability=1.0)
        assert np.array_equal(batch.input_ids, snapshot)

    def test_majority_masked_become_mask_token(self, setup):
        corpus, tokenizer, _ = setup
        rng = np.random.default_rng(0)
        batch = stack_encoded(
            [tokenizer.encode_single(list(s), max_length=12) for s in corpus]
        )
        masked, labels = mask_tokens(batch, tokenizer.vocab, rng, mask_probability=1.0)
        selected = labels != IGNORE_INDEX
        mask_fraction = (
            masked.input_ids[selected] == tokenizer.vocab.mask_id
        ).mean()
        assert 0.6 < mask_fraction < 0.95


class TestMaskTokensWithRedraw:
    def test_always_masks_when_possible(self, setup):
        """Even at a vanishing mask probability every batch must train."""
        corpus, tokenizer, _ = setup
        rng = np.random.default_rng(0)
        batch = stack_encoded(
            [tokenizer.encode_single(list(s), max_length=12) for s in corpus[:2]]
        )
        for _ in range(50):
            drawn = mask_tokens_with_redraw(
                batch, tokenizer.vocab, rng, mask_probability=0.01
            )
            assert drawn is not None
            _, labels = drawn
            assert (labels != IGNORE_INDEX).any()

    def test_unmaskable_batch_returns_none_and_counts(self, setup):
        _, tokenizer, _ = setup
        rng = np.random.default_rng(0)
        # All-special batch: [CLS] [SEP] plus padding, nothing maskable.
        batch = stack_encoded([tokenizer.encode_single([], max_length=6)])
        stats = TrainStats()
        assert (
            mask_tokens_with_redraw(batch, tokenizer.vocab, rng, 0.15, stats=stats)
            is None
        )
        assert stats.unmaskable_batches == 1

    def test_redraws_are_counted(self, setup):
        corpus, tokenizer, _ = setup
        rng = np.random.default_rng(1)
        batch = stack_encoded(
            [tokenizer.encode_single(list(corpus[0]), max_length=12)]
        )
        stats = TrainStats()
        for _ in range(200):
            mask_tokens_with_redraw(
                batch, tokenizer.vocab, rng, mask_probability=0.02, stats=stats
            )
        assert stats.mask_redraws > 0


class TestPretrainMlm:
    def test_loss_decreases(self, setup):
        corpus, tokenizer, config = setup
        model = MiniBert(config, seed=0)
        result = pretrain_mlm(
            model, tokenizer, corpus, epochs=8, batch_size=8, lr=1e-3, max_length=12
        )
        assert result.steps > 0
        first_quarter = np.mean(result.losses[: max(1, len(result.losses) // 4)])
        last_quarter = np.mean(result.losses[-max(1, len(result.losses) // 4) :])
        assert last_quarter < first_quarter

    def test_model_left_in_eval_mode(self, setup):
        corpus, tokenizer, config = setup
        model = MiniBert(config, seed=0)
        pretrain_mlm(model, tokenizer, corpus, epochs=1, max_length=12)
        assert not model.training

    def test_empty_corpus_rejected(self, setup):
        _, tokenizer, config = setup
        model = MiniBert(config, seed=0)
        with pytest.raises(ValueError):
            pretrain_mlm(model, tokenizer, [], epochs=1)

    def test_no_batch_is_silently_skipped(self, setup):
        """Regression: a mask draw that selects nothing used to drop the
        whole batch.  With redraw every micro-batch now takes a step, so the
        step count is exactly epochs * ceil(n / batch_size)."""
        corpus, tokenizer, config = setup
        tiny = corpus[:3]  # small batches maximise the empty-draw probability
        model = MiniBert(config, seed=0)
        epochs, batch_size = 6, 2
        stats = TrainStats()
        result = pretrain_mlm(
            model,
            tokenizer,
            tiny,
            epochs=epochs,
            batch_size=batch_size,
            max_length=12,
            mask_probability=0.03,
            stats=stats,
        )
        expected = epochs * math.ceil(len(tiny) / batch_size)
        assert result.steps == expected
        assert stats.unmaskable_batches == 0

    def test_stats_are_populated(self, setup):
        corpus, tokenizer, config = setup
        model = MiniBert(config, seed=0)
        stats = TrainStats()
        result = pretrain_mlm(
            model, tokenizer, corpus, epochs=2, batch_size=8, max_length=12, stats=stats
        )
        assert stats.steps == result.steps
        assert stats.epochs == 2
        assert stats.samples >= len(corpus)
        assert stats.buckets >= 2  # the fixture corpus has >= 2 length buckets
        for stage in ("encode", "bucket", "mask", "forward", "backward", "optim"):
            assert stats.stage_seconds.get(stage, 0.0) > 0.0, stage

    def test_params_stay_float32(self, setup):
        corpus, tokenizer, config = setup
        model = MiniBert(config, seed=0)
        pretrain_mlm(model, tokenizer, corpus, epochs=1, batch_size=8, max_length=12)
        for name, value in state_dict(model).items():
            assert value.dtype == np.float32, name


class TestBucketedMlmStepGradient:
    def test_mlm_step_gradcheck(self, setup):
        """Central-difference check of one bucketed MLM training step's
        gradient: loss -> MLM head -> encoder, through a trimmed batch."""
        corpus, tokenizer, config = setup
        deterministic = BertConfig(
            **{**config.to_dict(), "dropout": 0.0, "attention_dropout": 0.0}
        )
        model = MiniBert(deterministic, seed=0)
        head = MlmHead(deterministic, np.random.default_rng(1))
        model.train()
        head.train()
        rng = np.random.default_rng(2)

        from repro.engine.batching import plan_training_microbatches

        encoded = [
            tokenizer.encode_single(list(s), max_length=12) for s in corpus[:6]
        ]
        plan = plan_training_microbatches(encoded, microbatch_size=4, rng=rng)
        batch = plan[0].batch
        assert batch.input_ids.shape[1] < 12  # actually trimmed
        drawn = mask_tokens_with_redraw(batch, tokenizer.vocab, rng, 0.5)
        assert drawn is not None
        masked, labels = drawn

        def loss() -> float:
            hidden, _ = model.forward(masked)
            value, _ = softmax_cross_entropy(
                head.forward(hidden), labels, ignore_index=IGNORE_INDEX
            )
            return value

        hidden, _ = model.forward(masked)
        _, grad_logits = softmax_cross_entropy(
            head.forward(hidden), labels, ignore_index=IGNORE_INDEX
        )
        model.zero_grad()
        head.zero_grad()
        model.backward(grad_hidden=head.backward(grad_logits))

        def numeric(array, index, eps=1e-2):
            original = float(array[index])
            array[index] = original + eps
            plus = loss()
            array[index] = original - eps
            minus = loss()
            array[index] = original
            return (plus - minus) / (2 * eps)

        checks = [
            (model.blocks[0].attention.qkv.weight, (1, 0)),
            (model.blocks[0].attention.output.weight, (2, 3)),
            (model.blocks[0].intermediate.weight, (0, 1)),
            (model.pooler.bias, (0,)),  # pooled path gets no gradient here
            (head.projection.weight, (3, 7)),
        ]
        for parameter, index in checks:
            expected = numeric(parameter.value, index)
            assert parameter.grad[index] == pytest.approx(
                expected, rel=5e-2, abs=2e-3
            ), parameter.value.shape
