"""Tests for the on-disk artefact cache."""

import numpy as np
import pytest

from repro.lm import cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


class TestContentKey:
    def test_deterministic(self):
        assert cache.content_key("a", [1, 2], {"x": 1}) == cache.content_key(
            "a", [1, 2], {"x": 1}
        )

    def test_sensitive_to_content(self):
        assert cache.content_key("a") != cache.content_key("b")
        assert cache.content_key([1, 2]) != cache.content_key([2, 1])

    def test_dict_key_order_irrelevant(self):
        assert cache.content_key({"a": 1, "b": 2}) == cache.content_key(
            {"b": 2, "a": 1}
        )


class TestArrayCache:
    def test_round_trip(self):
        arrays = {"w": np.arange(6, dtype=np.float32).reshape(2, 3)}
        cache.save_arrays("test", "key1", arrays)
        loaded = cache.load_arrays("test", "key1")
        assert loaded is not None
        assert np.array_equal(loaded["w"], arrays["w"])

    def test_missing_returns_none(self):
        assert cache.load_arrays("test", "nope") is None


class TestJsonCache:
    def test_round_trip(self):
        cache.save_json("test", "key2", {"tokens": ["a", "b"]})
        assert cache.load_json("test", "key2") == {"tokens": ["a", "b"]}

    def test_missing_returns_none(self):
        assert cache.load_json("test", "nope") is None


def test_clear_cache(isolated_cache):
    cache.save_json("test", "k", [1])
    cache.save_arrays("test", "k", {"a": np.zeros(1)})
    removed = cache.clear_cache()
    assert removed == 2
    assert cache.load_json("test", "k") is None
