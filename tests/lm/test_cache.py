"""Tests for the ``repro.lm.cache`` compatibility shim.

The implementation moved to ``repro.store``; these tests pin the original
function API — plus the repaired semantics: corrupt entries are a miss, not
an exception, and ``clear_cache`` sweeps the whole directory.
"""

import numpy as np
import pytest

from repro.lm import cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


class TestContentKey:
    def test_deterministic(self):
        assert cache.content_key("a", [1, 2], {"x": 1}) == cache.content_key(
            "a", [1, 2], {"x": 1}
        )

    def test_sensitive_to_content(self):
        assert cache.content_key("a") != cache.content_key("b")
        assert cache.content_key([1, 2]) != cache.content_key([2, 1])

    def test_dict_key_order_irrelevant(self):
        assert cache.content_key({"a": 1, "b": 2}) == cache.content_key(
            {"b": 2, "a": 1}
        )


class TestArrayCache:
    def test_round_trip(self):
        arrays = {"w": np.arange(6, dtype=np.float32).reshape(2, 3)}
        cache.save_arrays("test", "key1", arrays)
        loaded = cache.load_arrays("test", "key1")
        assert loaded is not None
        assert np.array_equal(loaded["w"], arrays["w"])

    def test_missing_returns_none(self):
        assert cache.load_arrays("test", "nope") is None

    def test_corrupt_returns_none_instead_of_raising(self):
        """The original bug: a truncated .npz raised BadZipFile from every
        later run.  The shim must report a miss and quarantine instead."""
        cache.save_arrays("test", "key1", {"a": np.zeros(3)})
        path = cache.npz_path("test", "key1")
        path.write_bytes(path.read_bytes()[:40])
        assert cache.load_arrays("test", "key1") is None
        assert path.with_name(path.name + ".corrupt").exists()


class TestJsonCache:
    def test_round_trip(self):
        cache.save_json("test", "key2", {"tokens": ["a", "b"]})
        assert cache.load_json("test", "key2") == {"tokens": ["a", "b"]}

    def test_missing_returns_none(self):
        assert cache.load_json("test", "nope") is None

    def test_corrupt_returns_none_instead_of_raising(self):
        cache.save_json("test", "key2", {"tokens": ["a"]})
        cache.json_path("test", "key2").write_text('{"tokens": ["a')
        assert cache.load_json("test", "key2") is None


def test_paths_point_into_versioned_namespace(isolated_cache):
    assert cache.npz_path("k", "x").parent == isolated_cache / f"v{cache.FORMAT_VERSION}"
    assert cache.json_path("k", "x").suffix == ".json"


def test_clear_cache(isolated_cache):
    cache.save_json("test", "k", [1])
    cache.save_arrays("test", "k", {"a": np.zeros(1)})
    removed = cache.clear_cache()
    # entries + their .sha256 sidecars + the stats ledger, at minimum
    assert removed >= 4
    leftovers = [p for p in isolated_cache.rglob("*") if p.is_file()]
    assert leftovers == []
    assert cache.load_json("test", "k") is None


def test_clear_cache_sweeps_quarantine_and_temps(isolated_cache):
    cache.save_arrays("test", "k", {"a": np.zeros(1)})
    path = cache.npz_path("test", "k")
    path.write_bytes(b"rot")
    assert cache.load_arrays("test", "k") is None  # quarantines
    (path.parent / ".tmp-orphan.npz").write_bytes(b"")
    cache.clear_cache()
    assert [p for p in isolated_cache.rglob("*") if p.is_file()] == []
