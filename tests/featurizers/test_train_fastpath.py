"""Training fast path of the BERT featurizer: dtype hygiene + warm updates.

Two properties of this repo's incremental training loop:

* the whole step stays in float32 -- parameters, gradients, labels, weights
  and the classifier features never silently promote to float64;
* warm Adam updates (moment state + encoded samples persisted across
  ``update()`` calls) are an optimisation, not a behaviour change: the first
  update is identical to a cold start, and on the public datasets the
  rankings after repeated warm updates match a cold retrain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import PUBLIC_NAMES, load_dataset
from repro.featurizers import BertFeaturizer, BertFeaturizerConfig, make_pair_view
from repro.lm.bert import MiniBert
from repro.lm.config import BertConfig
from repro.lm.tokenizer import WordPieceTokenizer
from repro.lm.vocab import build_vocab
from repro.nn import state_dict
from repro.schema import AttributeRef
from repro.text.corpus import build_corpus

MAX_LENGTH = 24


def _make_featurizer(task, warm: bool, tokenizer=None, model=None) -> BertFeaturizer:
    """Featurizer over a small untrained encoder -- training behaviour, not
    model quality, is under test (same trick as the engine parity suite)."""
    if tokenizer is None or model is None:
        corpus = build_corpus(schemata=[task.target], seed=0)
        vocab = build_vocab(corpus, target_size=300)
        tokenizer = WordPieceTokenizer(vocab)
        model = MiniBert(
            BertConfig(
                vocab_size=len(vocab),
                hidden_size=32,
                num_layers=1,
                num_heads=2,
                intermediate_size=64,
                max_position=MAX_LENGTH,
            ),
            seed=1,
        )
    config = BertFeaturizerConfig(
        max_length=MAX_LENGTH,
        pretrain_epochs=1,
        update_epochs=1,
        batch_size=16,
        warm_updates=warm,
        seed=0,
    )
    return BertFeaturizer(tokenizer, model, config)


def _labeled_views(task, count: int):
    pairs = list(task.ground_truth.items())[:count]
    views = [
        make_pair_view(task.source, task.target, source, target)
        for source, target in pairs
    ]
    return views, [1] * len(views)


def _all_views(task, limit: int = 200):
    views = [
        make_pair_view(task.source, task.target, source_ref, target_ref)
        for source_ref in task.source.attribute_refs()
        for target_ref in task.target.attribute_refs()
    ]
    stride = max(1, len(views) // limit)
    return views[::stride][:limit]


class TestDtypeStability:
    def test_update_keeps_everything_float32(self, tiny_artifacts, source_schema, target_schema):
        featurizer = BertFeaturizer(
            tiny_artifacts.tokenizer,
            tiny_artifacts.bert,
            BertFeaturizerConfig(
                max_length=MAX_LENGTH, pretrain_epochs=1, update_epochs=2, seed=0
            ),
        )
        featurizer.pretrain(target_schema)
        view = make_pair_view(
            source_schema,
            target_schema,
            AttributeRef("Orders", "qty"),
            AttributeRef("Transaction", "quantity"),
        )
        featurizer.update([view], [1])

        for module in (featurizer.model, featurizer.classifier):
            for name, value in state_dict(module).items():
                assert value.dtype == np.float32, name
            for name, parameter in module.parameters().items():
                assert parameter.grad.dtype == np.float32, name

        from repro.lm.tokenizer import stack_encoded

        batch = stack_encoded([featurizer._encode_view(view)])  # noqa: SLF001
        features, _ = featurizer._forward_features(batch)  # noqa: SLF001
        assert features.dtype == np.float32


@pytest.fixture(scope="module", params=PUBLIC_NAMES)
def public_task(request):
    return load_dataset(request.param)


class TestWarmUpdates:
    def test_first_update_matches_cold_start(self, public_task):
        """A warm featurizer's first update has no prior state to reuse, so
        it must be bit-identical to the cold configuration."""
        views, labels = _labeled_views(public_task, 2)
        probe = _all_views(public_task, limit=60)
        scores = {}
        for warm in (False, True):
            featurizer = _make_featurizer(public_task, warm=warm)
            featurizer.pretrain(public_task.target)
            featurizer.update(views, labels)
            scores[warm] = featurizer.score_pairs(probe)
            featurizer.close()
        np.testing.assert_array_equal(scores[True], scores[False])

    def test_warm_rankings_match_cold_retrain(self, public_task):
        """After repeated updates the warm path may differ in the low-order
        bits of the weights, but the per-source candidate *rankings* -- the
        matcher's actual output -- must agree with a cold retrain."""
        views, labels = _labeled_views(public_task, 3)
        top1 = {}
        for warm in (False, True):
            featurizer = _make_featurizer(public_task, warm=warm)
            featurizer.pretrain(public_task.target)
            for round_end in (1, 2, 3):
                featurizer.update(views[:round_end], labels[:round_end])
            target_refs = list(public_task.target.attribute_refs())
            ranking = {}
            for source_ref in list(public_task.source.attribute_refs())[:12]:
                candidates = [
                    make_pair_view(public_task.source, public_task.target, source_ref, t)
                    for t in target_refs
                ]
                ranking[source_ref] = int(
                    np.argmax(featurizer.score_pairs(candidates))
                )
            top1[warm] = ranking
            featurizer.close()
        agreement = np.mean(
            [top1[True][ref] == top1[False][ref] for ref in top1[True]]
        )
        assert agreement >= 0.9, (agreement, top1)

    def test_warm_state_persists_across_updates(self, public_task):
        views, labels = _labeled_views(public_task, 2)
        featurizer = _make_featurizer(public_task, warm=True)
        featurizer.pretrain(public_task.target)
        featurizer.update(views[:1], labels[:1])
        assert featurizer._warm_optimizers is not None  # noqa: SLF001
        first_steps = featurizer._warm_optimizers[1][0]._step_count  # noqa: SLF001
        misses_after_first = featurizer.train_stats.encode_cache_misses

        featurizer.update(views, labels)
        assert featurizer.train_stats.warm_starts == 1
        # The optimiser continued stepping rather than restarting from zero.
        assert featurizer._warm_optimizers[1][0]._step_count > first_steps  # noqa: SLF001
        # Overlapping samples were served from the encoding cache.
        assert featurizer.train_stats.encode_cache_hits > 0
        assert featurizer.train_stats.encode_cache_misses >= misses_after_first
        featurizer.close()

    def test_cold_config_never_stores_state(self, public_task):
        views, labels = _labeled_views(public_task, 1)
        featurizer = _make_featurizer(public_task, warm=False)
        featurizer.pretrain(public_task.target)
        featurizer.update(views, labels)
        featurizer.update(views, labels)
        assert featurizer._warm_optimizers is None  # noqa: SLF001
        assert featurizer.train_stats.warm_starts == 0
        assert featurizer.train_stats.cold_starts >= 3  # pretrain + 2 updates
        featurizer.close()
