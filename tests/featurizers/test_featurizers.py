"""Tests for the lexical, embedding and pipeline featurizers."""

import numpy as np
import pytest

from repro.featurizers import (
    AttributePairView,
    EmbeddingFeaturizer,
    FeaturizerPipeline,
    LexicalFeaturizer,
    make_pair_view,
)
from repro.schema import AttributeRef


def view(source_schema, target_schema, source, target, use_descriptions=True):
    return make_pair_view(
        source_schema,
        target_schema,
        AttributeRef.parse(source),
        AttributeRef.parse(target),
        use_descriptions=use_descriptions,
    )


class TestMakePairView:
    def test_fields(self, source_schema, target_schema):
        v = view(source_schema, target_schema, "Orders.qty", "Transaction.quantity")
        assert v.source_name == "qty"
        assert v.target_name == "quantity"
        assert v.target_tokens == ("quantity",)
        assert v.target_description  # tiny target schema has descriptions

    def test_description_ablation(self, source_schema, target_schema):
        v = view(
            source_schema,
            target_schema,
            "Orders.disc",
            "Transaction.price_change_percentage",
            use_descriptions=False,
        )
        assert v.source_description == ""
        assert v.target_description == ""


class TestLexicalFeaturizer:
    def test_abbreviation_scores_one(self, source_schema, target_schema):
        featurizer = LexicalFeaturizer()
        v = view(source_schema, target_schema, "Orders.qty", "Transaction.quantity")
        assert featurizer.score_pairs([v])[0] == pytest.approx(1.0)

    def test_unrelated_scores_low(self, source_schema, target_schema):
        featurizer = LexicalFeaturizer()
        v = view(source_schema, target_schema, "Orders.qty", "Brand.brand_name")
        assert featurizer.score_pairs([v])[0] < 0.5

    def test_separator_insensitive(self, source_schema, target_schema):
        featurizer = LexicalFeaturizer()
        a = view(source_schema, target_schema, "Item.brand_name", "Brand.brand_name")
        assert featurizer.score_pairs([a])[0] == pytest.approx(1.0)

    def test_caching_returns_same_scores(self, source_schema, target_schema):
        featurizer = LexicalFeaturizer()
        v = view(source_schema, target_schema, "Orders.qty", "Transaction.quantity")
        first = featurizer.score_pairs([v])
        second = featurizer.score_pairs([v])
        assert np.array_equal(first, second)
        assert len(featurizer.cache) == 1

    def test_update_is_noop(self, source_schema, target_schema):
        featurizer = LexicalFeaturizer()
        v = view(source_schema, target_schema, "Orders.qty", "Transaction.quantity")
        featurizer.update([v], [1])  # must not raise


class TestEmbeddingFeaturizer:
    def test_scores_in_unit_interval(self, source_schema, target_schema, tiny_artifacts):
        featurizer = EmbeddingFeaturizer(embeddings=tiny_artifacts.embeddings)
        views = [
            view(source_schema, target_schema, "Orders.qty", "Transaction.quantity"),
            view(source_schema, target_schema, "Orders.qty", "Brand.brand_name"),
        ]
        scores = featurizer.score_pairs(views)
        assert ((0.0 <= scores) & (scores <= 1.0)).all()

    def test_synonym_beats_unrelated(self, source_schema, target_schema, tiny_artifacts):
        featurizer = EmbeddingFeaturizer(embeddings=tiny_artifacts.embeddings)
        synonym = view(
            source_schema,
            target_schema,
            "Orders.disc",
            "Transaction.price_change_percentage",
            use_descriptions=False,
        )
        unrelated = view(
            source_schema,
            target_schema,
            "Orders.disc",
            "Transaction.transaction_date",
            use_descriptions=False,
        )
        scores = featurizer.score_pairs([synonym, unrelated])
        assert scores[0] > scores[1]

    def test_requires_embeddings(self):
        with pytest.raises((ValueError, TypeError)):
            EmbeddingFeaturizer(embeddings=None)


class TestPipeline:
    def test_feature_matrix_shape(self, source_schema, target_schema, tiny_artifacts):
        pipeline = FeaturizerPipeline(
            [
                LexicalFeaturizer(),
                EmbeddingFeaturizer(embeddings=tiny_artifacts.embeddings),
            ]
        )
        views = [
            view(source_schema, target_schema, "Orders.qty", "Transaction.quantity"),
            view(source_schema, target_schema, "Orders.qty", "Brand.brand_name"),
        ]
        matrix = pipeline.featurize(views)
        assert matrix.shape == (2, 2)
        assert pipeline.feature_names == ["lexical", "embedding"]

    def test_empty_views(self, tiny_artifacts):
        pipeline = FeaturizerPipeline([LexicalFeaturizer()])
        assert pipeline.featurize([]).shape == (0, 1)

    def test_rejects_empty_pipeline(self):
        with pytest.raises(ValueError):
            FeaturizerPipeline([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            FeaturizerPipeline([LexicalFeaturizer(), LexicalFeaturizer()])
