"""Tests for the BERT featurizer: pre-training samples, training, scoring."""

import numpy as np
import pytest

from repro.featurizers import (
    BertFeaturizer,
    BertFeaturizerConfig,
    MatchingClassifier,
    compute_match_features,
    generate_pretraining_samples,
    make_pair_view,
)
from repro.schema import AttributeRef


@pytest.fixture()
def featurizer(tiny_artifacts):
    config = BertFeaturizerConfig(
        max_length=24, pretrain_epochs=2, update_epochs=1, batch_size=16, seed=0
    )
    return BertFeaturizer(tiny_artifacts.tokenizer, tiny_artifacts.bert, config)


class TestPretrainingSamples:
    def test_sample_kinds_present(self, target_schema, rng):
        samples = generate_pretraining_samples(target_schema, rng)
        kinds = {sample.kind for sample in samples}
        assert "self-repeating" in kinds
        assert "self-explaining" in kinds  # tiny target has descriptions
        assert "pkfk" in kinds
        assert "synonym-paraphrase" in kinds
        assert "negative" in kinds

    def test_self_repeating_per_attribute(self, target_schema, rng):
        samples = generate_pretraining_samples(target_schema, rng)
        self_repeating = [s for s in samples if s.kind == "self-repeating"]
        assert len(self_repeating) == target_schema.num_attributes
        for sample in self_repeating:
            assert sample.words_a == sample.words_b
            assert sample.label == 1

    def test_pkfk_per_relationship(self, target_schema, rng):
        samples = generate_pretraining_samples(target_schema, rng)
        pkfk = [s for s in samples if s.kind == "pkfk"]
        assert len(pkfk) == target_schema.num_relationships

    def test_negative_ratio(self, target_schema, rng):
        samples = generate_pretraining_samples(
            target_schema, rng, negatives_per_positive=2
        )
        positives = [s for s in samples if s.label == 1]
        negatives = [s for s in samples if s.label == 0]
        assert len(negatives) == 2 * len(positives)

    def test_negatives_differ_from_positives(self, target_schema, rng):
        samples = generate_pretraining_samples(target_schema, rng)
        for sample in samples:
            if sample.kind == "negative":
                assert sample.words_a != sample.words_b or sample.label == 1

    def test_deterministic(self, target_schema):
        a = generate_pretraining_samples(target_schema, np.random.default_rng(5))
        b = generate_pretraining_samples(target_schema, np.random.default_rng(5))
        assert a == b


class TestMatchingClassifier:
    def test_forward_backward_shapes(self, rng):
        classifier = MatchingClassifier(hidden_size=8, classifier_size=4, rng=rng)
        features = rng.standard_normal(
            (3, MatchingClassifier.NUM_SCALARS + MatchingClassifier.NUM_CHANNELS * 8)
        ).astype(np.float32)
        logits = classifier.forward(features)
        assert logits.shape == (3,)
        grad = classifier.backward(np.ones(3, dtype=np.float32))
        assert grad.shape == features.shape

    def test_channel_path_starts_silent(self, rng):
        classifier = MatchingClassifier(hidden_size=8, classifier_size=4, rng=rng)
        scalars = np.zeros((1, MatchingClassifier.NUM_SCALARS), dtype=np.float32)
        channels = rng.standard_normal((1, MatchingClassifier.NUM_CHANNELS * 8)).astype(
            np.float32
        )
        features = np.concatenate([scalars, channels], axis=1)
        # With zero scalars and zeroed channel output, logit = scalar bias.
        assert classifier.forward(features)[0] == pytest.approx(
            float(classifier.scalar_path.bias.value[0])
        )


class TestBertFeaturizerTraining:
    def test_pretrain_produces_losses(self, featurizer, target_schema):
        losses = featurizer.pretrain(target_schema)
        assert losses
        assert all(np.isfinite(losses))

    def test_scores_in_unit_interval(
        self, featurizer, source_schema, target_schema
    ):
        featurizer.pretrain(target_schema)
        views = [
            make_pair_view(
                source_schema,
                target_schema,
                AttributeRef("Orders", "qty"),
                target,
            )
            for target in target_schema.attribute_refs()
        ]
        scores = featurizer.score_pairs(views)
        assert ((0.0 <= scores) & (scores <= 1.0)).all()

    def test_score_cache_hit_is_stable(self, featurizer, source_schema, target_schema):
        view = make_pair_view(
            source_schema,
            target_schema,
            AttributeRef("Orders", "qty"),
            AttributeRef("Transaction", "quantity"),
        )
        first = featurizer.score_pairs([view])[0]
        second = featurizer.score_pairs([view])[0]
        assert first == second

    def test_update_invalidates_score_cache(
        self, featurizer, source_schema, target_schema
    ):
        featurizer.pretrain(target_schema)
        view = make_pair_view(
            source_schema,
            target_schema,
            AttributeRef("Orders", "qty"),
            AttributeRef("Transaction", "quantity"),
        )
        before = featurizer.score_pairs([view])[0]
        featurizer.update([view], [1])
        after = featurizer.score_pairs([view])[0]
        assert before != after  # training moved the score

    def test_update_label_direction(self, tiny_artifacts, source_schema, target_schema):
        """Training the same pair positive vs negative moves scores apart."""
        config = BertFeaturizerConfig(
            max_length=24, pretrain_epochs=1, update_epochs=4, batch_size=16, seed=0
        )
        view = make_pair_view(
            source_schema,
            target_schema,
            AttributeRef("Orders", "order_date"),
            AttributeRef("Transaction", "tax_amount"),
        )
        scores = {}
        for label in (0, 1):
            featurizer = BertFeaturizer(
                tiny_artifacts.tokenizer, tiny_artifacts.bert, config
            )
            featurizer.pretrain(target_schema)
            for _ in range(3):
                featurizer.update([view], [label])
            scores[label] = featurizer.score_pairs([view])[0]
        assert scores[1] > scores[0]

    def test_update_without_labels_is_noop(self, featurizer):
        featurizer.update([], [])  # must not raise


class TestEncodePathsAreBatched:
    """Every encode path must go through stack_encoded (satellite of PR 2)."""

    def test_compute_match_features_rejects_unbatched(self, featurizer):
        single = featurizer.tokenizer.encode_pair(["order"], ["product"], max_length=12)
        with pytest.raises(
            ValueError, match=r"2-D.*wrap single pairs\s+with stack_encoded"
        ):
            compute_match_features(
                featurizer.model,
                sorted(featurizer.tokenizer.vocab.special_ids()),
                single,
            )

    def test_score_pairs_accepts_a_single_view(self, featurizer, source_schema, target_schema):
        """One pair flows through the engine's stack_encoded path, no ValueError."""
        view = make_pair_view(
            source_schema,
            target_schema,
            AttributeRef("Orders", "order_id"),
            AttributeRef("Transaction", "transaction_id"),
        )
        scores = featurizer.score_pairs([view])
        assert scores.shape == (1,)
        assert 0.0 <= scores[0] <= 1.0
