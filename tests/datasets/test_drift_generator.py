"""Tests for the deterministic drift generator (`repro.datasets.drift`)."""

import pytest

from repro.datasets import DriftConfig, DriftGenerator, generate_drift_sequence
from repro.schema import DropColumn, RenameColumn, apply_delta

from ..conftest import make_source_schema


class TestDriftConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            DriftConfig(num_deltas=0)
        with pytest.raises(ValueError):
            DriftConfig(ops_per_delta=0)
        with pytest.raises(ValueError):
            DriftConfig(mix={"rename": 0.0})
        with pytest.raises(ValueError):
            DriftConfig(mix={"explode": 1.0})


class TestDriftGenerator:
    def test_same_seed_same_sequence(self):
        config = DriftConfig(num_deltas=4, ops_per_delta=2, seed=7)
        first = generate_drift_sequence(make_source_schema(), config)
        second = generate_drift_sequence(make_source_schema(), config)
        assert first == second

    def test_different_seeds_diverge(self):
        base = make_source_schema()
        a = generate_drift_sequence(base, DriftConfig(num_deltas=3, seed=0))
        b = generate_drift_sequence(base, DriftConfig(num_deltas=3, seed=1))
        assert a != b

    def test_sequence_applies_cleanly_in_order(self):
        schema = make_source_schema()
        deltas = generate_drift_sequence(
            schema, DriftConfig(num_deltas=5, ops_per_delta=2, seed=3)
        )
        assert len(deltas) == 5
        for delta in deltas:
            assert len(delta) == 2
            schema, _ = apply_delta(schema, delta)

    def test_generator_walks_the_evolving_schema(self):
        # next_delta() advances the internal schema: ops of later deltas
        # must reference post-drift column names, never stale ones.
        generator = DriftGenerator(
            make_source_schema(), DriftConfig(num_deltas=6, ops_per_delta=2, seed=1)
        )
        for _ in range(6):
            delta = generator.next_delta()
            # The delta already applied; current schema contains its results.
            for op in delta:
                if isinstance(op, RenameColumn):
                    assert generator.schema.has_attribute(op.new_ref)
                    assert not generator.schema.has_attribute(op.ref)

    def test_mix_zero_removes_kind(self):
        deltas = generate_drift_sequence(
            make_source_schema(),
            DriftConfig(
                num_deltas=4,
                ops_per_delta=2,
                mix={"rename": 1.0, "retype": 1.0},
                seed=0,
            ),
        )
        kinds = {op.kind for delta in deltas for op in delta}
        assert kinds <= {"rename", "retype"}

    def test_drop_never_removes_keys(self):
        schema = make_source_schema()
        keys = set(schema.key_refs())
        generator = DriftGenerator(
            schema, DriftConfig(num_deltas=8, ops_per_delta=1, mix={"drop": 1.0}, seed=0)
        )
        for _ in range(8):
            for op in generator.next_delta():
                assert isinstance(op, DropColumn)
                assert op.ref not in keys

    def test_entities_filter_scopes_drift(self):
        deltas = generate_drift_sequence(
            make_source_schema(),
            DriftConfig(num_deltas=4, ops_per_delta=2, entities=("Orders",), seed=0),
        )
        for delta in deltas:
            for op in delta:
                entity = op.entity if op.kind == "add" else op.ref.entity
                assert entity == "Orders"

    def test_renames_stay_lexically_related(self):
        # Rename synthesis restyles/suffixes the original tokens, so the
        # first original token should survive somewhere in the new name.
        deltas = generate_drift_sequence(
            make_source_schema(),
            DriftConfig(num_deltas=4, ops_per_delta=1, mix={"rename": 1.0}, seed=2),
        )
        for delta in deltas:
            for op in delta:
                head = op.ref.attribute.split("_")[0].lower()
                assert head[:3] in op.new_name.lower()
