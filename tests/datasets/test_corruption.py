"""Tests for the name-corruption machinery."""

import numpy as np
import pytest

from repro.datasets import CorruptionMix, NameCorruptor, apply_style
from repro.text import default_lexicon, split_identifier


@pytest.fixture()
def corruptor(rng):
    return NameCorruptor(default_lexicon(), rng, style="snake")


class TestApplyStyle:
    def test_styles(self):
        tokens = ["order", "line", "total"]
        assert apply_style(tokens, "snake") == "order_line_total"
        assert apply_style(tokens, "camel") == "orderLineTotal"
        assert apply_style(tokens, "pascal") == "OrderLineTotal"
        assert apply_style(tokens, "compact") == "orderlinetotal"

    def test_invalid(self):
        with pytest.raises(ValueError):
            apply_style(["a"], "nope")
        with pytest.raises(ValueError):
            apply_style([], "snake")


class TestCorruptionMix:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            CorruptionMix(synonym=0.6, abbreviate=0.5, drop=0.2)


class TestNameCorruptor:
    def test_synonym_rename_produces_lexicon_synonym(self, rng):
        corruptor = NameCorruptor(
            default_lexicon(), rng, mix=CorruptionMix(1.0, 0.0, 0.0, compound=0.0)
        )
        corrupted, kind = corruptor.corrupt("price_change_percentage")
        assert kind == "synonym"
        # The corrupted name is a synonym phrase of the original (or contains
        # a synonym replacement of a sub-phrase).
        assert corrupted != "price_change_percentage"

    def test_abbreviation(self, rng):
        corruptor = NameCorruptor(
            default_lexicon(), rng, mix=CorruptionMix(0.0, 1.0, 0.0, compound=0.0)
        )
        corrupted, kind = corruptor.corrupt("european_article_number")
        assert corrupted == "ean"
        assert kind == "abbreviate"

    def test_transform_log_and_share(self, rng):
        corruptor = NameCorruptor(
            default_lexicon(), rng, mix=CorruptionMix(1.0, 0.0, 0.0, compound=0.0)
        )
        for __ in range(5):
            corruptor.corrupt("discount_percentage")
        assert len(corruptor.transform_log) == 5
        assert corruptor.transform_share("synonym") == 1.0

    def test_unique_retries_on_collision(self, rng):
        corruptor = NameCorruptor(
            default_lexicon(), rng, mix=CorruptionMix(0.0, 0.0, 0.0, compound=0.0)
        )
        taken: set[str] = set()
        names = []
        for __ in range(6):
            name, __kind = corruptor.corrupt_unique("status_code", taken)
            assert name.lower() not in taken
            taken.add(name.lower())
            names.append(name)
        assert len(set(names)) == 6

    def test_corruption_is_tokenizable(self, corruptor):
        for name in ("transaction_total_amount", "store_open_date", "quantity"):
            corrupted, _ = corruptor.corrupt(name)
            assert split_identifier(corrupted)

    def test_deterministic_per_seed(self):
        lexicon = default_lexicon()
        a = NameCorruptor(lexicon, np.random.default_rng(4))
        b = NameCorruptor(lexicon, np.random.default_rng(4))
        for name in ("price_change_percentage", "unit_of_measure_code"):
            assert a.corrupt(name) == b.corrupt(name)
