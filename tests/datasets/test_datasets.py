"""Tests for the dataset generators and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    CUSTOMER_SPECS,
    ISS_NUM_ATTRIBUTES,
    ISS_NUM_ENTITIES,
    ISS_NUM_RELATIONSHIPS,
    build_ipfqr,
    build_movielens_imdb,
    build_rdb_star,
    build_retail_iss,
    generate_customer,
    load_dataset,
    retail_iss,
)
from repro.schema import JoinGraph, validate_dataset
from repro.schema.validate import validate_correspondence_endpoints


@pytest.fixture(scope="module")
def iss():
    return retail_iss()


class TestRetailIss:
    def test_exact_paper_statistics(self, iss):
        assert iss.num_entities == ISS_NUM_ENTITIES == 92
        assert iss.num_attributes == ISS_NUM_ATTRIBUTES == 1218
        assert iss.num_relationships == ISS_NUM_RELATIONSHIPS == 184

    def test_fully_documented(self, iss):
        for __, attribute in iss.iter_attributes():
            assert attribute.description

    def test_join_graph_connected(self, iss):
        assert len(JoinGraph(iss).connected_components()) == 1

    def test_paper_example_attributes_present(self, iss):
        assert iss.has_attribute("TransactionLine.price_change_percentage")
        assert iss.has_attribute("TransactionLine.product_item_price_amount")
        assert iss.has_attribute("TransactionLine.quantity")
        assert iss.has_attribute("Product.european_article_number")
        assert iss.has_attribute("Promotion.discount_percentage")

    def test_every_entity_has_primary_key(self, iss):
        for entity in iss.entities:
            assert entity.primary_key is not None

    def test_deterministic(self):
        assert (
            build_retail_iss().stats() == build_retail_iss().stats()
        )


class TestCustomerGenerators:
    @pytest.mark.parametrize("label", list(CUSTOMER_SPECS))
    def test_table1_statistics(self, iss, label):
        spec = CUSTOMER_SPECS[label]
        dataset = generate_customer(iss, spec)
        stats = dataset.schema.stats()
        assert stats["entities"] == spec.num_entities
        assert stats["attributes"] == spec.num_attributes
        assert stats["pk_fk"] == spec.num_relationships
        assert stats["descriptions"] == spec.descriptions

    @pytest.mark.parametrize("label", list(CUSTOMER_SPECS))
    def test_ground_truth_valid_and_total(self, iss, label):
        dataset = generate_customer(iss, CUSTOMER_SPECS[label])
        validate_dataset(dataset.schema, iss, dataset.ground_truth)

    def test_ground_truth_injective(self, iss):
        dataset = generate_customer(iss, CUSTOMER_SPECS["B"])
        targets = list(dataset.ground_truth.values())
        assert len(targets) == len(set(targets))

    def test_hard_match_share(self, iss):
        """>30% of matches should be synonym renames, as in the paper."""
        dataset = generate_customer(iss, CUSTOMER_SPECS["E"])
        assert dataset.synonym_share > 0.3

    def test_deterministic(self, iss):
        a = generate_customer(iss, CUSTOMER_SPECS["A"])
        b = generate_customer(iss, CUSTOMER_SPECS["A"])
        assert a.ground_truth == b.ground_truth

    def test_relationships_map_to_iss_relationships(self, iss):
        dataset = generate_customer(iss, CUSTOMER_SPECS["B"])
        truth = dataset.ground_truth
        iss_relationship_set = {
            (str(r.child), str(r.parent)) for r in iss.relationships
        }
        for relationship in dataset.schema.relationships:
            mapped_child = truth[relationship.child]
            mapped_parent = truth[relationship.parent]
            assert (str(mapped_child), str(mapped_parent)) in iss_relationship_set


class TestPublicDatasets:
    def test_rdb_star_table2_statistics(self):
        dataset = build_rdb_star()
        assert dataset.source.stats()["entities"] == 13
        assert dataset.source.stats()["attributes"] == 65
        assert dataset.source.stats()["pk_fk"] == 12
        assert dataset.target.stats()["entities"] == 5
        assert dataset.target.stats()["attributes"] == 34
        assert dataset.target.stats()["pk_fk"] == 4

    def test_ipfqr_table2_statistics(self):
        dataset = build_ipfqr()
        assert dataset.source.stats() == {
            "name": "ipfqr_state",
            "entities": 1,
            "attributes": 51,
            "unique_attribute_names": 51,
            "pk_fk": 0,
            "descriptions": False,
        }
        assert dataset.target.num_attributes == 67

    def test_movielens_table2_statistics(self):
        dataset = build_movielens_imdb()
        assert dataset.source.stats()["entities"] == 6
        assert dataset.source.stats()["attributes"] == 19
        assert dataset.source.stats()["pk_fk"] == 5
        assert dataset.target.stats()["entities"] == 7
        assert dataset.target.stats()["attributes"] == 39
        assert dataset.target.stats()["pk_fk"] == 6

    @pytest.mark.parametrize("builder", [build_rdb_star, build_ipfqr, build_movielens_imdb])
    def test_ground_truth_endpoints_exist(self, builder):
        dataset = builder()
        validate_correspondence_endpoints(
            dataset.source, dataset.target, dataset.ground_truth
        )

    def test_rdb_star_paper_example(self):
        dataset = build_rdb_star()
        from repro.schema import AttributeRef

        assert dataset.ground_truth[
            AttributeRef("Sales", "Discount")
        ] == AttributeRef("OrderDetails", "Discount")


class TestRegistry:
    def test_load_all_names(self):
        from repro.datasets import ALL_NAMES

        assert len(ALL_NAMES) == 8

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("bogus")
        with pytest.raises(KeyError):
            load_dataset("customer_z")

    def test_customer_task_shares_iss(self):
        a = load_dataset("customer_a")
        b = load_dataset("customer_b")
        assert a.target is b.target
        assert a.is_customer and not load_dataset("rdb_star").is_customer

    def test_load_is_cached(self):
        assert load_dataset("customer_a") is load_dataset("customer_a")
