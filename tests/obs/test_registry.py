"""Tests for the metrics registry and the cross-snapshot merge protocol."""

import pytest

from repro.engine.stats import EngineStats
from repro.nn.stats import TrainStats
from repro.obs import MetricsRegistry, merge_metrics
from repro.store.stats import CacheStats


class TestMetricsRegistry:
    def test_registers_as_dict_objects(self):
        registry = MetricsRegistry()
        stats = EngineStats()
        registry.register("engine", stats)
        stats.pairs_scored = 5  # lazily resolved: later growth is visible
        assert registry.as_dict()["engine.pairs_scored"] == 5

    def test_registers_callables(self):
        registry = MetricsRegistry()
        registry.register("fn", lambda: {"a": 1})
        registry.register("obj", lambda: CacheStats(hits=2))
        flat = registry.as_dict()
        assert flat["fn.a"] == 1
        assert flat["obj.hits"] == 2

    def test_snapshot_is_nested(self):
        registry = MetricsRegistry()
        registry.register("x", lambda: {"k": 1})
        assert registry.snapshot() == {"x": {"k": 1}}

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.register("x", lambda: {})
        with pytest.raises(ValueError, match="duplicate"):
            registry.register("x", lambda: {})

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().register("", lambda: {})

    def test_invalid_source_rejected(self):
        with pytest.raises(TypeError):
            MetricsRegistry().register("bad", object())

    def test_source_must_produce_mapping(self):
        registry = MetricsRegistry()
        registry.register("bad", lambda: 42)
        with pytest.raises(TypeError, match="expected a mapping"):
            registry.as_dict()

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.register("b", lambda: {})
        registry.register("a", lambda: {})
        assert registry.names() == ["a", "b"]

    def test_unified_pipeline_sources(self):
        """The tentpole wiring: engine/train/store stats under one roof."""
        registry = MetricsRegistry()
        registry.register("engine", EngineStats(pairs_scored=3))
        registry.register("train", TrainStats(steps=2))
        registry.register("store", CacheStats(hits=1))
        flat = registry.as_dict()
        assert flat["engine.pairs_scored"] == 3
        assert flat["train.steps"] == 2
        assert flat["store.hits"] == 1


class TestMergeMetrics:
    def test_numbers_sum(self):
        assert merge_metrics({"a": 1}, {"a": 2.5}) == {"a": 3.5}

    def test_lists_concatenate(self):
        assert merge_metrics({"q": ["x"]}, {"q": ["y"]}) == {"q": ["x", "y"]}

    def test_nested_dicts_recurse(self):
        left = {"engine": {"pairs": 1, "only_left": 2}}
        right = {"engine": {"pairs": 3}, "only_right": 4}
        assert merge_metrics(left, right) == {
            "engine": {"pairs": 4, "only_left": 2},
            "only_right": 4,
        }

    def test_mismatched_types_right_wins(self):
        assert merge_metrics({"a": "x"}, {"a": "y"}) == {"a": "y"}

    def test_disjoint_keys_pass_through(self):
        assert merge_metrics({"a": 1}, {"b": 2}) == {"a": 1, "b": 2}


class TestStatsMerge:
    def test_engine_stats_merge(self):
        left = EngineStats(pairs_scored=2, scoring_calls=1)
        left.add_time("forward", 1.0)
        right = EngineStats(pairs_scored=3, pairs_skipped=4)
        right.add_time("forward", 0.5, calls=2)
        right.add_time("bucket", 0.25)
        merged = left.merge(right)
        assert merged.pairs_scored == 5
        assert merged.pairs_skipped == 4
        assert merged.scoring_calls == 1
        assert merged.stage_seconds["forward"] == pytest.approx(1.5)
        assert merged.stage_calls["forward"] == 3
        assert merged.stage_seconds["bucket"] == pytest.approx(0.25)
        # Inputs untouched.
        assert left.pairs_scored == 2 and right.pairs_scored == 3

    def test_train_stats_merge(self):
        left = TrainStats(steps=10, warm_starts=1)
        left.add_time("backward", 2.0)
        right = TrainStats(steps=5, cold_starts=2)
        right.add_time("backward", 1.0)
        merged = left.merge(right)
        assert merged.steps == 15
        assert merged.warm_starts == 1
        assert merged.cold_starts == 2
        assert merged.stage_seconds["backward"] == pytest.approx(3.0)
        assert merged.stage_calls["backward"] == 2

    def test_engine_stats_merge_covers_quant_counters(self):
        """The int8 rung's counters sum like every other counter."""
        left = EngineStats(
            quant_batches=3, quant_fallbacks=1, autotune_runs=2
        )
        right = EngineStats(
            quant_batches=4, autotune_shapes=5, autotune_cache_hits=1
        )
        merged = left.merge(right)
        assert merged.quant_batches == 7
        assert merged.quant_fallbacks == 1
        assert merged.autotune_runs == 2
        assert merged.autotune_shapes == 5
        assert merged.autotune_cache_hits == 1

    def test_fresh_engine_stats_render_quant_counters_as_zero(self):
        """as_dict derives from the dataclass fields: new counters never
        vanish from the rendered snapshot just because they are zero."""
        rendered = EngineStats().as_dict()
        for counter in (
            "quant_batches",
            "quant_fallbacks",
            "autotune_runs",
            "autotune_shapes",
            "autotune_cache_hits",
        ):
            assert counter in rendered and rendered[counter] == 0

    def test_merge_round_trips_through_registry_protocol(self):
        """Stats merge() and snapshot merge_metrics() agree on the totals."""
        left, right = EngineStats(pairs_scored=2), EngineStats(pairs_scored=3)
        via_stats = left.merge(right).as_dict()
        via_snapshots = merge_metrics(left.as_dict(), right.as_dict())
        assert via_stats == via_snapshots

    def test_merge_round_trips_with_quant_counters_set(self):
        left = EngineStats(quant_batches=2, autotune_cache_hits=1)
        right = EngineStats(quant_fallbacks=3, autotune_shapes=4)
        via_stats = left.merge(right).as_dict()
        via_snapshots = merge_metrics(left.as_dict(), right.as_dict())
        assert via_stats == via_snapshots
