"""Tests for trace loading/validation and summarization."""

import json

import pytest

from repro import obs
from repro.obs import TraceError, load_trace, summarize_trace, summarize_trace_file


def write_lines(path, lines):
    path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")


META = {"kind": "meta", "version": obs.TRACE_SCHEMA_VERSION, "created_s": 0.0, "pid": 1}


class TestLoadTrace:
    def test_valid_trace_round_trips(self, tmp_path):
        path = tmp_path / "t.ndjson"
        lines = [META, {"kind": "span", "name": "s", "id": 1, "dur_s": 0.1}]
        write_lines(path, lines)
        assert load_trace(path) == lines

    def test_invalid_json_names_the_line(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text(json.dumps(META) + "\nnot-json\n")
        with pytest.raises(TraceError, match=r":2: invalid JSON"):
            load_trace(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text(json.dumps(META) + "\n[1, 2]\n")
        with pytest.raises(TraceError, match="expected a JSON object"):
            load_trace(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        write_lines(path, [META, {"kind": "mystery"}])
        with pytest.raises(TraceError, match="unknown record kind"):
            load_trace(path)

    def test_missing_meta_header_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        write_lines(path, [{"kind": "span", "name": "s"}])
        with pytest.raises(TraceError, match="meta header"):
            load_trace(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        write_lines(path, [dict(META, version=obs.TRACE_SCHEMA_VERSION + 1)])
        with pytest.raises(TraceError, match="unsupported trace schema version"):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text("")
        with pytest.raises(TraceError, match="empty trace"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text(json.dumps(META) + "\n\n\n")
        assert load_trace(path) == [META]


class TestSummarizeTrace:
    def test_iterations_extracted_and_sorted(self):
        records = [
            META,
            {
                "kind": "span",
                "name": "session.iteration",
                "dur_s": 0.2,
                "attrs": {"iteration": 2, "labels_provided": 2},
            },
            {
                "kind": "span",
                "name": "session.iteration",
                "dur_s": 0.1,
                "attrs": {"iteration": 1, "labels_provided": 1},
            },
        ]
        summary = summarize_trace(records)
        assert [row["iteration"] for row in summary.iterations] == [1, 2]
        assert summary.iterations[0]["dur_s"] == pytest.approx(0.1)

    def test_stages_aggregated_largest_first(self):
        records = [
            META,
            {"kind": "span", "name": "fast", "dur_s": 0.1},
            {"kind": "span", "name": "slow", "dur_s": 1.0},
            {"kind": "span", "name": "slow", "dur_s": 2.0},
        ]
        summary = summarize_trace(records)
        assert [stage.name for stage in summary.stages] == ["slow", "fast"]
        slow = summary.stages[0]
        assert slow.calls == 2
        assert slow.total_seconds == pytest.approx(3.0)
        assert slow.mean_seconds == pytest.approx(1.5)

    def test_counts_and_metrics(self):
        records = [
            META,
            {"kind": "span", "name": "s", "dur_s": 0.0},
            {"kind": "event", "name": "invariant.violation", "attrs": {}},
            {"kind": "event", "name": "other", "attrs": {}},
            {"kind": "metrics", "metrics": {"engine.pairs_scored": 9}},
            {"kind": "summary", "span_seconds": {}, "span_calls": {}},
        ]
        summary = summarize_trace(records)
        assert summary.version == obs.TRACE_SCHEMA_VERSION
        assert summary.num_records == len(records)
        assert summary.num_spans == 1
        assert summary.num_events == 2
        assert summary.invariant_violations == 1
        assert summary.metrics == {"engine.pairs_scored": 9}

    def test_in_memory_tracer_records_summarizable(self):
        # Tracer.records (no file, no meta header) also summarize.
        tracer = obs.Tracer()
        with tracer.span("a"):
            pass
        summary = summarize_trace(tracer.records)
        assert summary.version is None
        assert summary.num_spans == 1


class TestSummarizeTraceFile:
    def test_real_tracer_output_summarizes(self, tmp_path):
        path = tmp_path / "t.ndjson"
        tracer = obs.Tracer(path)
        with tracer.span("session.iteration", iteration=1, labels_provided=1):
            with tracer.span("lsm.predict"):
                pass
        tracer.close()
        summary = summarize_trace_file(path)
        assert summary.version == obs.TRACE_SCHEMA_VERSION
        assert len(summary.iterations) == 1
        assert {stage.name for stage in summary.stages} == {
            "session.iteration",
            "lsm.predict",
        }
