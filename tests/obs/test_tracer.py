"""Tests for the structured tracer and the ambient span/check helpers."""

import json
import threading

import pytest

from repro import obs
from repro.obs.tracer import _NULL_SPAN_CONTEXT


class TestNullTracer:
    def test_is_the_ambient_default(self):
        assert obs.current_tracer() is obs.NULL_TRACER
        assert not obs.enabled()

    def test_span_returns_shared_noop_context(self):
        # No per-call allocation on the untraced hot path.
        assert obs.NULL_TRACER.span("x") is _NULL_SPAN_CONTEXT
        with obs.span("anything", attr=1) as span:
            span.set(more=2)
            span.add(count=3)

    def test_event_flush_close_are_noops(self):
        obs.NULL_TRACER.event("e", a=1)
        obs.NULL_TRACER.flush()
        obs.NULL_TRACER.close()


class TestTracerSpans:
    def test_nesting_records_parent_and_depth(self):
        tracer = obs.Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_rec, outer_rec = tracer.records
        assert inner_rec["name"] == "inner"
        assert inner_rec["parent"] == outer.span_id
        assert inner_rec["depth"] == 1
        assert outer_rec["name"] == "outer"
        assert outer_rec["parent"] is None
        assert outer_rec["depth"] == 0
        assert outer_rec["dur_s"] >= inner_rec["dur_s"] >= 0.0

    def test_attrs_set_and_add(self):
        tracer = obs.Tracer()
        with tracer.span("s", initial=1) as span:
            span.set(label="x")
            span.add(count=2)
            span.add(count=3)
        (record,) = tracer.records
        assert record["attrs"] == {"initial": 1, "label": "x", "count": 5}

    def test_exception_recorded_and_reraised(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad")
        (record,) = tracer.records
        assert record["attrs"]["error"] == "ValueError: bad"

    def test_span_counters_accumulate(self):
        tracer = obs.Tracer()
        for _ in range(3):
            with tracer.span("repeat"):
                pass
        assert tracer.span_calls["repeat"] == 3
        assert tracer.span_seconds["repeat"] >= 0.0

    def test_thread_safety_smoke(self):
        tracer = obs.Tracer()

        def work():
            for _ in range(50):
                with tracer.span("t"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tracer.span_calls["t"] == 200
        assert len(tracer.records) == 200


class TestNdjsonFile:
    def test_meta_header_first_and_lines_parse(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        tracer = obs.Tracer(path)
        with tracer.span("a", n=1):
            pass
        tracer.event("e", ok=True)
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [line["kind"] for line in lines]
        assert kinds == ["meta", "span", "event", "summary"]
        assert lines[0]["version"] == obs.TRACE_SCHEMA_VERSION

    def test_crash_leaves_parseable_prefix(self, tmp_path):
        # Per-line flush: even without close(), written lines are valid JSON.
        path = tmp_path / "trace.ndjson"
        tracer = obs.Tracer(path)
        with tracer.span("only"):
            pass
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["meta", "span"]

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        tracer = obs.Tracer(path)
        with tracer.span("s"):
            pass
        tracer.close()
        size = path.stat().st_size
        tracer.close()
        assert path.stat().st_size == size

    def test_metrics_tail_from_registry(self, tmp_path):
        registry = obs.MetricsRegistry()
        registry.register("unit", lambda: {"value": 7})
        path = tmp_path / "trace.ndjson"
        tracer = obs.Tracer(path, registry=registry)
        with tracer.span("s"):
            pass
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        metrics = [line for line in lines if line["kind"] == "metrics"]
        assert metrics and metrics[0]["metrics"] == {"unit.value": 7}

    def test_numpy_attrs_serialize(self, tmp_path):
        import numpy as np

        path = tmp_path / "trace.ndjson"
        tracer = obs.Tracer(path)
        with tracer.span("s", count=np.int64(3), score=np.float64(0.5)):
            pass
        tracer.close()
        span = next(
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["kind"] == "span"
        )
        assert span["attrs"] == {"count": 3, "score": 0.5}


class TestAmbientActivation:
    def test_activated_swaps_and_restores(self):
        tracer = obs.Tracer()
        with obs.activated(tracer):
            assert obs.current_tracer() is tracer
            assert obs.enabled()
            with obs.span("via-ambient"):
                pass
        assert obs.current_tracer() is obs.NULL_TRACER
        assert tracer.span_calls["via-ambient"] == 1

    def test_activated_none_means_null(self):
        with obs.activated(None):
            assert obs.current_tracer() is obs.NULL_TRACER

    def test_activation_is_reentrant(self):
        first, second = obs.Tracer(), obs.Tracer()
        with obs.activated(first):
            with obs.activated(second):
                assert obs.current_tracer() is second
            assert obs.current_tracer() is first

    def test_activation_does_not_bleed_across_threads(self):
        # Regression: the ambient holder was a threading.local subclass with
        # __slots__, which stored the value on the *shared* instance and
        # re-ran __init__ on each new thread's first access -- another
        # thread merely reading current_tracer() reset an activation to
        # NULL_TRACER mid-block.
        tracer = obs.Tracer()
        observed = {}

        def probe():
            observed["tracer"] = obs.current_tracer()

        with obs.activated(tracer):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
            # The probe thread saw the default, not this thread's activation...
            assert observed["tracer"] is obs.NULL_TRACER
            # ...and its read did not disturb this thread's activation.
            assert obs.current_tracer() is tracer
            assert obs.enabled()
        assert obs.current_tracer() is obs.NULL_TRACER

    def test_activation_isolated_between_asyncio_tasks(self):
        import asyncio

        async def activate_and_yield(tracer, results, key):
            with obs.activated(tracer):
                await asyncio.sleep(0)  # interleave with the sibling task
                results[key] = obs.current_tracer()

        async def main():
            first, second = obs.Tracer(), obs.Tracer()
            results = {}
            await asyncio.gather(
                activate_and_yield(first, results, "a"),
                activate_and_yield(second, results, "b"),
            )
            return first, second, results

        first, second, results = asyncio.run(main())
        assert results["a"] is first
        assert results["b"] is second


class TestCheck:
    def test_noop_when_tracing_off(self):
        obs.check("anything", False, detail=1)  # must not raise

    def test_raises_and_records_event_when_on(self):
        tracer = obs.Tracer()
        with obs.activated(tracer):
            obs.check("fine", True)
            with pytest.raises(obs.InvariantViolation, match="broken"):
                obs.check("broken", False, expected=0, got=3)
        events = [rec for rec in tracer.records if rec["kind"] == "event"]
        assert len(events) == 1
        assert events[0]["name"] == "invariant.violation"
        assert events[0]["attrs"] == {"check": "broken", "expected": 0, "got": 3}

    def test_violation_is_assertion_error(self):
        assert issubclass(obs.InvariantViolation, AssertionError)
