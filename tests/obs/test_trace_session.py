"""End-to-end tracing: a traced session's NDJSON reproduces its records.

This is the acceptance test of the observability layer: with
``LsmConfig.trace_path`` set, a full ``MatchingSession.run`` emits a
parseable NDJSON trace whose per-iteration spans carry exactly the numbers
of the session's :class:`~repro.core.session.IterationRecord` list, plus the
metrics tail and the per-stage aggregates.
"""

from dataclasses import asdict

import pytest

from repro import obs
from repro.core import (
    GroundTruthOracle,
    LearnedSchemaMatcher,
    LsmConfig,
    MatchingSession,
)
from repro.featurizers.bert import BertFeaturizerConfig


@pytest.fixture()
def traced_run(tmp_path, source_schema, target_schema, tiny_artifacts, ground_truth):
    trace_path = tmp_path / "session.ndjson"
    config = LsmConfig(
        trace_path=str(trace_path),
        bert=BertFeaturizerConfig(
            max_length=24, pretrain_epochs=1, update_epochs=1, batch_size=16, seed=0
        ),
        seed=0,
    )
    matcher = LearnedSchemaMatcher(
        source_schema, target_schema, config=config, artifacts=tiny_artifacts
    )
    oracle = GroundTruthOracle(ground_truth, target_schema)
    session = MatchingSession(matcher, oracle).run()
    matcher.close()
    return trace_path, session


class TestTracedSession:
    def test_trace_is_wellformed_ndjson(self, traced_run):
        trace_path, _ = traced_run
        records = obs.load_trace(trace_path)  # raises TraceError if malformed
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "meta"
        assert kinds[-1] == "summary"
        assert "metrics" in kinds

    def test_iteration_spans_reproduce_session_records(self, traced_run):
        trace_path, session = traced_run
        summary = obs.summarize_trace_file(trace_path)
        assert len(summary.iterations) == len(session.records)
        for row, record in zip(summary.iterations, session.records):
            expected = asdict(record)
            assert {key: row[key] for key in expected} == expected

    def test_expected_stage_spans_present(self, traced_run):
        trace_path, _ = traced_run
        summary = obs.summarize_trace_file(trace_path)
        stages = {stage.name for stage in summary.stages}
        assert {
            "session.run",
            "session.iteration",
            "session.review",
            "session.label",
            "lsm.init",
            "lsm.predict",
            "lsm.featurize",
            "lsm.meta_fit",
            "lsm.adjust",
            "lsm.rank",
            "engine.score",
            "bert.pretrain",
        } <= stages

    def test_no_invariant_violations_on_healthy_run(self, traced_run):
        trace_path, _ = traced_run
        summary = obs.summarize_trace_file(trace_path)
        assert summary.invariant_violations == 0

    def test_metrics_tail_covers_all_subsystems(self, traced_run):
        trace_path, _ = traced_run
        summary = obs.summarize_trace_file(trace_path)
        assert summary.metrics is not None
        prefixes = {key.split(".", 1)[0] for key in summary.metrics}
        assert {"engine", "train", "pipeline", "store"} <= prefixes
        assert summary.metrics["engine.pairs_requested"] > 0

    def test_session_results_unchanged_by_tracing(
        self, traced_run, source_schema, target_schema, tiny_artifacts, ground_truth
    ):
        _, traced_session = traced_run
        config = LsmConfig(
            bert=BertFeaturizerConfig(
                max_length=24, pretrain_epochs=1, update_epochs=1, batch_size=16, seed=0
            ),
            seed=0,
        )
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        untraced = MatchingSession(matcher, oracle).run()
        matcher.close()
        strip = lambda records: [
            {k: v for k, v in asdict(r).items() if k != "response_seconds"}
            for r in records
        ]
        assert strip(traced_session.records) == strip(untraced.records)


class TestMatcherTracerLifecycle:
    def test_no_trace_means_null_tracer(
        self, source_schema, target_schema, tiny_artifacts
    ):
        config = LsmConfig(
            bert=BertFeaturizerConfig(max_length=24, pretrain_epochs=1, seed=0), seed=0
        )
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        try:
            assert matcher.tracer is obs.NULL_TRACER
        finally:
            matcher.close()  # must tolerate closing the null tracer

    def test_metrics_registry_wired(self, source_schema, target_schema, tiny_artifacts):
        config = LsmConfig(
            bert=BertFeaturizerConfig(max_length=24, pretrain_epochs=1, seed=0), seed=0
        )
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=config, artifacts=tiny_artifacts
        )
        try:
            assert matcher.metrics.names() == [
                "drift",
                "encode",
                "engine",
                "pipeline",
                "retrieval",
                "store",
                "train",
            ]
            flat = matcher.metrics.as_dict()
            assert "engine.pairs_scored" in flat
            assert "encode.token_cache_hits" in flat
            assert "store.hits" in flat
        finally:
            matcher.close()
