"""Tests for subword vocabulary and embedding composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings import (
    SubwordEmbeddings,
    SubwordVocab,
    character_ngrams_of_word,
    fnv1a,
)


def tiny_corpus():
    return [
        ["quantity", "amount", "number"],
        ["discount", "markdown", "percentage"],
        ["order", "identifier"],
    ] * 2


class TestNgrams:
    def test_boundary_markers(self):
        grams = character_ngrams_of_word("qty", min_n=3, max_n=3)
        assert "<qt" in grams
        assert "ty>" in grams

    def test_short_word_skips_large_n(self):
        grams = character_ngrams_of_word("ab", min_n=3, max_n=5)
        # "<ab>" has length 4: one 3-gram window x2, one 4-gram.
        assert all(len(g) in (3, 4) for g in grams)

    def test_fnv_deterministic(self):
        assert fnv1a("hello") == fnv1a("hello")
        assert fnv1a("hello") != fnv1a("hellp")


class TestSubwordVocab:
    def test_word_ids_stable(self):
        vocab = SubwordVocab(tiny_corpus())
        assert "quantity" in vocab
        assert "zzz" not in vocab
        assert vocab.word_to_id["amount"] < vocab.num_words

    def test_subword_ids_include_word_row(self):
        vocab = SubwordVocab(tiny_corpus())
        ids = vocab.subword_ids("quantity")
        assert ids[0] == vocab.word_to_id["quantity"]
        assert all(i >= vocab.num_words for i in ids[1:])

    def test_oov_gets_ngram_rows_only(self):
        vocab = SubwordVocab(tiny_corpus())
        ids = vocab.subword_ids("unseenword")
        assert all(vocab.num_words <= i < vocab.padding_row for i in ids)

    def test_min_count_filters(self):
        corpus = [["rare"], ["common"], ["common"]]
        vocab = SubwordVocab(corpus, min_count=2)
        assert "common" in vocab
        assert "rare" not in vocab

    def test_row_layout(self):
        vocab = SubwordVocab(tiny_corpus(), num_buckets=128)
        assert vocab.num_rows == vocab.num_words + 128 + 1
        assert vocab.padding_row == vocab.num_rows - 1


class TestSubwordEmbeddings:
    @pytest.fixture()
    def embeddings(self, rng):
        vocab = SubwordVocab(tiny_corpus(), num_buckets=128)
        table = rng.standard_normal((vocab.num_rows, 8)).astype(np.float32)
        return SubwordEmbeddings(vocab, table)

    def test_padding_row_zeroed(self, embeddings):
        assert np.allclose(embeddings.input_table[embeddings.vocab.padding_row], 0.0)

    def test_oov_never_raises(self, embeddings):
        vector = embeddings.word_vector("totally_new_word")
        assert vector.shape == (8,)

    def test_phrase_vector_empty(self, embeddings):
        assert np.allclose(embeddings.phrase_vector([]), 0.0)

    def test_cosine_bounds(self, embeddings):
        value = embeddings.similarity(["quantity"], ["amount"])
        assert -1.0 <= value <= 1.0

    def test_cosine_zero_vector(self):
        assert SubwordEmbeddings.cosine(np.zeros(4), np.ones(4)) == 0.0

    def test_self_similarity_is_one(self, embeddings):
        assert embeddings.similarity(["quantity"], ["quantity"]) == pytest.approx(1.0, abs=1e-5)

    def test_table_shape_validated(self, rng):
        vocab = SubwordVocab(tiny_corpus())
        with pytest.raises(ValueError):
            SubwordEmbeddings(vocab, rng.standard_normal((3, 8)))

    def test_nearest_words(self, embeddings):
        nearest = embeddings.nearest_words(["quantity"], k=3)
        assert len(nearest) == 3
        assert nearest[0][0] == "quantity"


@settings(max_examples=30, deadline=None)
@given(st.from_regex(r"[a-z]{1,15}", fullmatch=True))
def test_property_subword_ids_deterministic(word):
    vocab = SubwordVocab(tiny_corpus())
    assert vocab.subword_ids(word) == vocab.subword_ids(word)
