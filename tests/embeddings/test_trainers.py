"""Tests for the skip-gram and PPMI-SVD embedding trainers."""

import numpy as np
import pytest

from repro.embeddings import (
    PpmiConfig,
    SkipGramConfig,
    train_ppmi_embeddings,
    train_subword_embeddings,
)


def synonym_corpus():
    """Corpus with two 3-member synonym groups co-occurring pairwise.

    Three members per group give every pair of synonyms a *shared* context
    word (the third member), so both first-order and second-order similarity
    point the same way -- like the real lexicon templates.
    """
    groups = [["alpha", "beta", "epsilon"], ["gamma", "delta", "zeta"]]
    sentences = []
    for _ in range(30):
        for group in groups:
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    sentences.append([a, b])
                    sentences.append([b, a])
    return sentences


class TestPpmiTrainer:
    def test_synonym_geometry(self):
        embeddings = train_ppmi_embeddings(
            synonym_corpus(), config=PpmiConfig(dim=8, window=2)
        )
        same_group = embeddings.similarity(["alpha"], ["beta"])
        cross_group = embeddings.similarity(["alpha"], ["delta"])
        assert same_group > cross_group

    def test_deterministic(self):
        config = PpmiConfig(dim=8, seed=3)
        a = train_ppmi_embeddings(synonym_corpus(), config=config)
        b = train_ppmi_embeddings(synonym_corpus(), config=config)
        assert np.allclose(a.input_table, b.input_table)

    def test_rejects_tiny_corpus(self):
        with pytest.raises(ValueError):
            train_ppmi_embeddings([["one"]], config=PpmiConfig(dim=4))

    def test_dim_padding_when_rank_deficient(self):
        corpus = [["a", "b"], ["b", "c"], ["c", "a"]] * 5
        embeddings = train_ppmi_embeddings(corpus, config=PpmiConfig(dim=16))
        assert embeddings.dim == 16


class TestSkipGramTrainer:
    def test_trains_and_separates_groups(self):
        config = SkipGramConfig(dim=16, epochs=20, window=2, seed=0)
        embeddings = train_subword_embeddings(synonym_corpus(), config=config)
        same_group = embeddings.similarity(["alpha"], ["beta"])
        cross_group = embeddings.similarity(["alpha"], ["delta"])
        assert same_group > cross_group

    def test_padding_row_stays_zero(self):
        config = SkipGramConfig(dim=8, epochs=2, seed=0)
        embeddings = train_subword_embeddings(synonym_corpus(), config=config)
        assert np.allclose(
            embeddings.input_table[embeddings.vocab.padding_row], 0.0
        )

    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError):
            train_subword_embeddings([[]], config=SkipGramConfig(epochs=1))
