"""End-to-end integration tests across the whole library.

These run the complete LSM pipeline -- corpus, embeddings, MiniBERT,
featurizers, meta-learner, score adjustments, active learning -- on the tiny
synthetic task, and spot-check the experiment drivers against a small public
dataset.  The full-scale experiments live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro import (
    GroundTruthOracle,
    LearnedSchemaMatcher,
    LsmConfig,
    MatchingSession,
)
from repro.baselines import ComaMatcher, InteractiveBaselineSession
from repro.eval.metrics import area_above_curve, predictions_top_k_accuracy
from repro.featurizers.bert import BertFeaturizerConfig


@pytest.fixture()
def lsm_config():
    return LsmConfig(
        bert=BertFeaturizerConfig(
            max_length=24, pretrain_epochs=2, update_epochs=1, batch_size=16, seed=0
        ),
        seed=0,
    )


class TestFullPipeline:
    def test_lsm_beats_manual_labeling(
        self, source_schema, target_schema, tiny_artifacts, ground_truth, lsm_config
    ):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=lsm_config, artifacts=tiny_artifacts
        )
        oracle = GroundTruthOracle(ground_truth, target_schema)
        session = MatchingSession(matcher, oracle).run()
        assert session.completed
        # Strictly cheaper than labeling everything by hand.
        assert session.total_labels < source_schema.num_attributes
        assert session.result.accuracy_against(ground_truth) == 1.0

    def test_lsm_curve_dominates_baseline_curve(
        self, source_schema, target_schema, tiny_artifacts, ground_truth, lsm_config
    ):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=lsm_config, artifacts=tiny_artifacts
        )
        lsm_session = MatchingSession(
            matcher, GroundTruthOracle(ground_truth, target_schema)
        ).run()
        baseline_matrix = ComaMatcher().score_matrix(source_schema, target_schema)
        baseline_session = InteractiveBaselineSession(
            baseline_matrix,
            source_schema,
            GroundTruthOracle(ground_truth, target_schema),
        ).run()
        lsm_area = area_above_curve(*lsm_session.curve())
        baseline_area = area_above_curve(*baseline_session.curve())
        # Smaller area above curve = less reviewing/labeling effort.  The
        # tiny task is easy enough that both finish almost immediately; both
        # must be far cheaper than manual labeling (area 50).
        manual_area = 50.0
        assert lsm_area < manual_area / 2
        assert baseline_area < manual_area / 2

    def test_zero_shot_prediction_quality(
        self, source_schema, target_schema, tiny_artifacts, ground_truth, lsm_config
    ):
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=lsm_config, artifacts=tiny_artifacts
        )
        predictions = matcher.predict()
        accuracy = predictions_top_k_accuracy(predictions, ground_truth, k=3)
        # The tiny task has abbreviations and one synonym rename; the
        # pre-trained featurizers must solve most of it with zero labels.
        assert accuracy >= 0.6

    def test_noise_ceiling(
        self, source_schema, target_schema, tiny_artifacts, ground_truth, lsm_config
    ):
        """Fig. 8 behaviour: final correctness is bounded by oracle fidelity."""
        oracle = GroundTruthOracle(
            ground_truth,
            target_schema,
            noise_rate=0.4,
            embeddings=tiny_artifacts.embeddings,
            seed=11,
        )
        matcher = LearnedSchemaMatcher(
            source_schema, target_schema, config=lsm_config, artifacts=tiny_artifacts
        )
        session = MatchingSession(matcher, oracle).run()
        corrupted_fraction = oracle.num_corrupted() / len(ground_truth)
        accuracy = session.result.accuracy_against(ground_truth)
        assert accuracy <= 1.0 - corrupted_fraction + 1e-9 + 0.25
        assert accuracy >= 1.0 - corrupted_fraction - 0.25


class TestExperimentDrivers:
    def test_rdb_star_baseline_driver(self):
        from repro.eval.experiments import run_baseline

        from repro.datasets import load_dataset

        task = load_dataset("rdb_star")
        result = run_baseline(task, "coma")
        assert result.top_k_accuracy[3] > 0.9  # near-perfect per Table III

    def test_table_stats_drivers(self):
        from repro.eval.experiments import table1_customer_stats, table2_public_stats

        rows = table1_customer_stats()
        assert [row["attributes"] for row in rows] == [29, 53, 84, 136, 530]
        public_rows = table2_public_stats()
        assert len(public_rows) == 6
