"""In-place index updates under schema drift, and store-key staleness.

The drift path mutates retrieval indexes in place (`update_docs`) instead
of rebuilding them; these tests pin the contract that an updated index is
*indistinguishable* from one rebuilt from scratch over the same doc set.

`TestStoreKeyStaleness` is the regression suite for the persisted-index
key: the key must hash the indexed document *contents*, so an index built
for a mutated schema can never be served from a stale cache entry that
only matched on artefact provenance.
"""

import numpy as np
import pytest

from repro.retrieval import (
    ClsDenseRetriever,
    DenseRetriever,
    FusedCandidateGenerator,
    RetrievalStats,
    SparseRetriever,
    docs_from_refs,
)
from repro.schema import AttributeRef, RenameColumn, SchemaDelta, apply_delta

from ..conftest import make_target_schema


@pytest.fixture()
def source_docs(source_schema):
    return docs_from_refs(source_schema, source_schema.attribute_refs())


@pytest.fixture()
def target_docs(target_schema):
    return docs_from_refs(target_schema, target_schema.attribute_refs())


def _extra_doc(name="launch_window", entity="Transaction"):
    from repro.retrieval.base import AttributeDoc
    from repro.text.tokenize import split_identifier

    return AttributeDoc(
        ref=AttributeRef(entity, name),
        name_tokens=tuple(split_identifier(name)),
        description_tokens=("scheduled", "launch", "window"),
        entity_tokens=tuple(split_identifier(entity)),
        dtype_family="temporal",
    )


class TestSparseUpdateDocs:
    def test_update_matches_rebuild(self, source_docs, target_docs):
        added = [_extra_doc()]
        removed = {target_docs[1].ref, target_docs[4].ref}
        evolved_docs = [d for d in target_docs if d.ref not in removed] + added

        updated = SparseRetriever(target_docs)
        updated.update_docs(added, removed)
        rebuilt = SparseRetriever(evolved_docs)

        assert [d.ref for d in updated.target_docs] == [
            d.ref for d in rebuilt.target_docs
        ]
        np.testing.assert_allclose(
            updated.score_matrix(source_docs), rebuilt.score_matrix(source_docs)
        )

    def test_remove_only_and_add_only(self, source_docs, target_docs):
        remove_only = SparseRetriever(target_docs)
        remove_only.update_docs([], {target_docs[0].ref})
        assert remove_only.num_targets == len(target_docs) - 1
        np.testing.assert_allclose(
            remove_only.score_matrix(source_docs),
            SparseRetriever(target_docs[1:]).score_matrix(source_docs),
        )

        add_only = SparseRetriever(target_docs)
        add_only.update_docs([_extra_doc()], set())
        assert add_only.num_targets == len(target_docs) + 1

    def test_noop_update(self, source_docs, target_docs):
        retriever = SparseRetriever(target_docs)
        before = retriever.score_matrix(source_docs)
        retriever.update_docs([], set())
        np.testing.assert_allclose(retriever.score_matrix(source_docs), before)


class TestDenseUpdateDocs:
    def test_update_matches_rebuild(self, tiny_artifacts, source_docs, target_docs):
        added = [_extra_doc()]
        removed = {target_docs[2].ref}
        evolved_docs = [d for d in target_docs if d.ref not in removed] + added

        updated = DenseRetriever(tiny_artifacts.embeddings, target_docs)
        updated.update_docs(added, removed)
        rebuilt = DenseRetriever(tiny_artifacts.embeddings, evolved_docs)

        np.testing.assert_allclose(
            updated.score_matrix(source_docs),
            rebuilt.score_matrix(source_docs),
            atol=1e-6,
        )

    def test_evolved_index_not_persisted(
        self, tiny_artifacts, target_docs, tmp_path, monkeypatch
    ):
        """The store entry stays keyed by the doc set it was built from: an
        in-place update must not overwrite it with the evolved index."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        stats = RetrievalStats()
        retriever = DenseRetriever(
            tiny_artifacts.embeddings, target_docs, cache_token="tok", stats=stats
        )
        retriever.update_docs([], {target_docs[0].ref})
        # A fresh retriever over the *original* docs still gets the
        # original (full-size) index from the store.
        again = DenseRetriever(
            tiny_artifacts.embeddings, target_docs, cache_token="tok", stats=stats
        )
        assert stats.index_cache_hits == 1
        assert again._index.shape[0] == len(target_docs)


class _FakeClsEncoder:
    def __init__(self, dim: int = 8) -> None:
        self.dim = dim
        self.model_version = 0

    def encode_cls(self, token_lists):
        rows = []
        for tokens in token_lists:
            seed = (hash(tuple(tokens)) % (2**32 - 1)) ^ self.model_version
            rows.append(np.random.default_rng(seed).normal(size=self.dim))
        return np.asarray(rows, dtype=np.float32)


class TestClsUpdateDocs:
    def test_update_matches_rebuild(self, source_docs, target_docs):
        encoder = _FakeClsEncoder()
        added = [_extra_doc()]
        removed = {target_docs[3].ref}
        evolved_docs = [d for d in target_docs if d.ref not in removed] + added

        updated = ClsDenseRetriever(encoder, target_docs, persist=False)
        updated.update_docs(added, removed)
        rebuilt = ClsDenseRetriever(encoder, evolved_docs, persist=False)
        np.testing.assert_allclose(
            updated.score_matrix(source_docs),
            rebuilt.score_matrix(source_docs),
            atol=1e-6,
        )

    def test_refresh_still_detects_model_moves(self, target_docs):
        encoder = _FakeClsEncoder()
        retriever = ClsDenseRetriever(encoder, target_docs, persist=False)
        retriever.update_docs([_extra_doc()], set())
        encoder.model_version = 1
        assert retriever.refresh() is True
        assert retriever._index.shape[0] == len(target_docs) + 1


class TestGeneratorUpdate:
    def test_generate_for_sources_matches_full_generate(
        self, tiny_artifacts, source_docs, target_docs
    ):
        generator = FusedCandidateGenerator(
            source_docs,
            target_docs,
            [
                SparseRetriever(target_docs),
                DenseRetriever(tiny_artifacts.embeddings, target_docs),
            ],
        )
        full = generator.generate(k=3)
        some = [0, 2, 5]
        partial = generator.generate_for_sources(some, k=3)
        assert partial.k == full.k
        for row, source_index in enumerate(some):
            np.testing.assert_array_equal(
                partial.per_source[row], full.per_source[source_index]
            )

    def test_update_target_docs_propagates_to_all_retrievers(
        self, tiny_artifacts, source_docs, target_docs
    ):
        added = [_extra_doc()]
        removed = {target_docs[0].ref}
        evolved_docs = [d for d in target_docs if d.ref not in removed] + added

        generator = FusedCandidateGenerator(
            source_docs,
            target_docs,
            [
                SparseRetriever(target_docs),
                DenseRetriever(tiny_artifacts.embeddings, target_docs),
            ],
        )
        generator.update_target_docs(added, removed)
        rebuilt = FusedCandidateGenerator(
            source_docs,
            evolved_docs,
            [
                SparseRetriever(evolved_docs),
                DenseRetriever(tiny_artifacts.embeddings, evolved_docs),
            ],
        )
        assert generator.num_targets == rebuilt.num_targets
        updated_sets = generator.generate(k=3)
        rebuilt_sets = rebuilt.generate(k=3)
        for a, b in zip(updated_sets.per_source, rebuilt_sets.per_source):
            np.testing.assert_array_equal(a, b)


class TestStoreKeyStaleness:
    """Satellite regression: persisted retrieval indexes must key on the
    indexed document contents, not just artefact provenance."""

    def test_mutated_schema_rebuilds_dense_index(
        self, tiny_artifacts, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        schema = make_target_schema()
        docs = docs_from_refs(schema, schema.attribute_refs())
        stats = RetrievalStats()
        DenseRetriever(
            tiny_artifacts.embeddings, docs, cache_token="tok", stats=stats
        )
        assert stats.index_builds == 1

        # Same artefacts, same cache token -- but one column was renamed.
        evolved, _ = apply_delta(
            schema,
            SchemaDelta(
                (RenameColumn(AttributeRef("Product", "product_name"), "title"),)
            ),
        )
        evolved_docs = docs_from_refs(evolved, evolved.attribute_refs())
        DenseRetriever(
            tiny_artifacts.embeddings, evolved_docs, cache_token="tok", stats=stats
        )
        assert stats.index_builds == 2
        assert stats.index_cache_hits == 0

    def test_description_change_rebuilds_dense_index(
        self, tiny_artifacts, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        schema = make_target_schema()
        docs = docs_from_refs(schema, schema.attribute_refs())
        stats = RetrievalStats()
        DenseRetriever(
            tiny_artifacts.embeddings, docs, cache_token="tok", stats=stats
        )
        mutated = list(docs)
        mutated[0] = _extra_doc(name=docs[0].ref.attribute, entity=docs[0].ref.entity)
        DenseRetriever(
            tiny_artifacts.embeddings, mutated, cache_token="tok", stats=stats
        )
        assert stats.index_builds == 2

    def test_cls_key_covers_docs_and_version(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        encoder = _FakeClsEncoder()
        schema = make_target_schema()
        docs = docs_from_refs(schema, schema.attribute_refs())
        stats = RetrievalStats()
        ClsDenseRetriever(encoder, docs, cache_token="tok", stats=stats)
        evolved, _ = apply_delta(
            schema,
            SchemaDelta(
                (RenameColumn(AttributeRef("Brand", "brand_name"), "label"),)
            ),
        )
        evolved_docs = docs_from_refs(evolved, evolved.attribute_refs())
        ClsDenseRetriever(encoder, evolved_docs, cache_token="tok", stats=stats)
        assert stats.index_builds == 2
        assert stats.index_cache_hits == 0
