"""Tests for fusion and the candidate-generator layer."""

import numpy as np
import pytest

from repro.retrieval import (
    AttributeDoc,
    FullProductGenerator,
    FusedCandidateGenerator,
    RetrievalConfig,
    RetrievalStats,
    build_generator,
    docs_from_refs,
    rrf_fuse,
    score_fuse,
)
from repro.schema import AttributeRef


class _StubRetriever:
    model_sensitive = False

    def __init__(self, name, matrix):
        self.name = name
        self.matrix = np.asarray(matrix, dtype=np.float64)

    def score_matrix(self, queries):
        return self.matrix

    def refresh(self):
        return False


def _docs(n, prefix):
    return [
        AttributeDoc(
            ref=AttributeRef("E", f"{prefix}{i}"),
            name_tokens=(f"{prefix}{i}",),
            description_tokens=(),
            entity_tokens=("e",),
        )
        for i in range(n)
    ]


class TestFusion:
    def test_rrf_agreement_wins(self):
        # Both retrievers rank target 2 first -> it must fuse first.
        a = np.array([[0.1, 0.2, 0.9]])
        b = np.array([[5.0, 1.0, 9.0]])
        fused = rrf_fuse([a, b], [1.0, 1.0])
        assert int(np.argmax(fused)) == 2

    def test_rrf_is_scale_free(self):
        a = np.array([[0.1, 0.2, 0.9]])
        fused_small = rrf_fuse([a], [1.0])
        fused_big = rrf_fuse([a * 1000], [1.0])
        np.testing.assert_allclose(fused_small, fused_big)

    def test_rrf_weighting_breaks_disagreement(self):
        a = np.array([[1.0, 0.0]])  # prefers target 0
        b = np.array([[0.0, 1.0]])  # prefers target 1
        heavy_a = rrf_fuse([a, b], [3.0, 1.0])
        heavy_b = rrf_fuse([a, b], [1.0, 3.0])
        assert int(np.argmax(heavy_a)) == 0
        assert int(np.argmax(heavy_b)) == 1

    def test_rrf_ties_break_by_target_index(self):
        a = np.array([[0.5, 0.5, 0.5]])
        fused = rrf_fuse([a], [1.0])
        assert list(np.argsort(-fused[0], kind="stable")) == [0, 1, 2]

    def test_score_fuse_normalises_per_query(self):
        a = np.array([[0.0, 10.0], [3.0, 3.0]])
        fused = score_fuse([a], [1.0])
        np.testing.assert_allclose(fused[0], [0.0, 1.0])
        # Constant rows normalise to zero rather than dividing by zero.
        np.testing.assert_allclose(fused[1], [0.0, 0.0])


class TestFullProductGenerator:
    def test_every_target_is_a_candidate(self):
        generator = FullProductGenerator(num_sources=3, num_targets=5)
        sets = generator.generate(k=2)  # k is ignored by the escape hatch
        assert sets.num_sources == 3
        assert sets.total_candidates() == 15
        assert generator.refresh() is False
        assert generator.model_sensitive is False


class TestFusedCandidateGenerator:
    def test_topk_follows_fused_ranking(self):
        sources, targets = _docs(2, "s"), _docs(4, "t")
        matrix = np.array([[0.9, 0.1, 0.5, 0.3], [0.0, 0.2, 0.1, 0.8]])
        generator = FusedCandidateGenerator(
            sources, targets, [_StubRetriever("dense", matrix)]
        )
        sets = generator.generate(k=2)
        assert list(sets.per_source[0]) == [0, 2]
        assert list(sets.per_source[1]) == [3, 1]
        assert sets.k == 2
        assert sets.retriever_names == ("dense",)

    def test_k_clamped_to_num_targets(self):
        sources, targets = _docs(1, "s"), _docs(3, "t")
        generator = FusedCandidateGenerator(
            sources, targets, [_StubRetriever("dense", np.zeros((1, 3)))]
        )
        sets = generator.generate(k=100)
        assert sets.k == 3
        assert sets.per_source[0].size == 3

    def test_candidate_set_helpers(self):
        sources, targets = _docs(1, "s"), _docs(4, "t")
        matrix = np.array([[0.1, 0.9, 0.5, 0.0]])
        generator = FusedCandidateGenerator(
            sources, targets, [_StubRetriever("dense", matrix)]
        )
        sets = generator.generate(k=2)
        assert sets.contains(0, 1)
        assert not sets.contains(0, 3)
        assert sets.rank_of(0, 1) == 0
        assert sets.rank_of(0, 2) == 1
        assert sets.rank_of(0, 3) is None

    def test_generation_counted(self):
        stats = RetrievalStats()
        generator = FusedCandidateGenerator(
            _docs(1, "s"),
            _docs(2, "t"),
            [_StubRetriever("dense", np.zeros((1, 2)))],
            stats=stats,
        )
        generator.generate(k=1)
        generator.generate(k=1)
        assert stats.generations == 2

    def test_requires_a_retriever(self):
        with pytest.raises(ValueError):
            FusedCandidateGenerator(_docs(1, "s"), _docs(1, "t"), [])

    def test_invalid_k(self):
        generator = FusedCandidateGenerator(
            _docs(1, "s"), _docs(1, "t"), [_StubRetriever("dense", np.zeros((1, 1)))]
        )
        with pytest.raises(ValueError):
            generator.generate(k=0)


class TestRetrievalConfig:
    def test_rejects_unknown_generator(self):
        with pytest.raises(ValueError):
            RetrievalConfig(generator="magic")

    def test_rejects_unknown_fusion(self):
        with pytest.raises(ValueError):
            RetrievalConfig(fusion="max")


class TestBuildGenerator:
    @pytest.fixture()
    def docs(self, source_schema, target_schema):
        return (
            docs_from_refs(source_schema, source_schema.attribute_refs()),
            docs_from_refs(target_schema, target_schema.attribute_refs()),
        )

    def test_full_escape_hatch(self, docs):
        source_docs, target_docs = docs
        generator = build_generator(
            source_docs, target_docs, RetrievalConfig(generator="full")
        )
        assert isinstance(generator, FullProductGenerator)

    def test_sparse_only(self, docs):
        source_docs, target_docs = docs
        generator = build_generator(
            source_docs,
            target_docs,
            RetrievalConfig(use_dense=False, use_sparse=True, persist=False),
        )
        assert isinstance(generator, FusedCandidateGenerator)
        assert [r.name for r in generator.retrievers] == ["sparse"]

    def test_dense_without_embeddings_falls_back(self, docs):
        """Dense is requested but no embeddings are available: only the
        retrievers whose dependencies exist are built."""
        source_docs, target_docs = docs
        generator = build_generator(
            source_docs,
            target_docs,
            RetrievalConfig(use_dense=True, use_sparse=True, persist=False),
            embeddings=None,
        )
        assert [r.name for r in generator.retrievers] == ["sparse"]

    def test_nothing_available_degrades_to_full(self, docs):
        source_docs, target_docs = docs
        generator = build_generator(
            source_docs,
            target_docs,
            RetrievalConfig(use_dense=True, use_sparse=False, persist=False),
            embeddings=None,
        )
        assert isinstance(generator, FullProductGenerator)

    def test_dense_and_sparse(self, docs, tiny_artifacts):
        source_docs, target_docs = docs
        generator = build_generator(
            source_docs,
            target_docs,
            RetrievalConfig(persist=False),
            embeddings=tiny_artifacts.embeddings,
        )
        names = [r.name for r in generator.retrievers]
        assert names == ["sparse", "dense"] or names == ["dense", "sparse"]
        sets = generator.generate(k=3)
        assert sets.num_sources == len(source_docs)
        assert all(row.size == 3 for row in sets.per_source)
