"""Tests for the dense retrievers and their persisted indexes."""

import numpy as np
import pytest

from repro.retrieval import (
    ClsDenseRetriever,
    DenseRetriever,
    RetrievalStats,
    docs_from_refs,
)


@pytest.fixture()
def source_docs(source_schema):
    return docs_from_refs(source_schema, source_schema.attribute_refs())


@pytest.fixture()
def target_docs(target_schema):
    return docs_from_refs(target_schema, target_schema.attribute_refs())


class TestDenseRetriever:
    def test_true_match_beats_random_target(self, tiny_artifacts, source_docs, target_docs):
        retriever = DenseRetriever(tiny_artifacts.embeddings, target_docs)
        matrix = retriever.score_matrix(source_docs)
        assert matrix.shape == (len(source_docs), len(target_docs))
        qty = next(i for i, d in enumerate(source_docs) if d.ref.attribute == "qty")
        quantity = next(
            i for i, d in enumerate(target_docs) if d.ref.attribute == "quantity"
        )
        tax = next(
            i for i, d in enumerate(target_docs) if d.ref.attribute == "tax_amount"
        )
        assert matrix[qty, quantity] > matrix[qty, tax]

    def test_scores_are_cosines(self, tiny_artifacts, target_docs):
        retriever = DenseRetriever(tiny_artifacts.embeddings, target_docs)
        matrix = retriever.score_matrix(target_docs)
        assert matrix.max() <= 1.0 + 1e-5
        # An attribute is maximally similar to itself (duplicate-token docs
        # like the two ``product_id`` columns may tie, so compare scores).
        assert np.allclose(np.diagonal(matrix), matrix.max(axis=1), atol=1e-5)

    def test_persistence_roundtrip(
        self, tiny_artifacts, target_docs, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        stats = RetrievalStats()
        first = DenseRetriever(
            tiny_artifacts.embeddings, target_docs, cache_token="tok", stats=stats
        )
        assert stats.index_builds == 1
        assert stats.index_cache_hits == 0
        second = DenseRetriever(
            tiny_artifacts.embeddings, target_docs, cache_token="tok", stats=stats
        )
        assert stats.index_cache_hits == 1
        np.testing.assert_allclose(first._index, second._index)

    def test_no_cache_token_skips_store(
        self, tiny_artifacts, target_docs, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        DenseRetriever(tiny_artifacts.embeddings, target_docs, cache_token=None)
        assert not any(tmp_path.rglob("*.npz"))


class _FakeClsEncoder:
    """Deterministic CLS encoder whose output depends on model_version."""

    def __init__(self, dim: int = 8) -> None:
        self.dim = dim
        self.model_version = 0
        self.encode_calls = 0

    def encode_cls(self, token_lists):
        self.encode_calls += 1
        rows = []
        for tokens in token_lists:
            seed = (hash(tuple(tokens)) % (2**32 - 1)) ^ self.model_version
            rows.append(np.random.default_rng(seed).normal(size=self.dim))
        return np.asarray(rows, dtype=np.float32)


class TestClsDenseRetriever:
    def test_refresh_follows_model_version(self, target_docs):
        encoder = _FakeClsEncoder()
        stats = RetrievalStats()
        retriever = ClsDenseRetriever(encoder, target_docs, stats=stats, persist=False)
        assert retriever.model_sensitive is True
        assert stats.index_builds == 1
        # Same version: refresh is a no-op.
        assert retriever.refresh() is False
        assert stats.index_builds == 1
        # Version bump: refresh rebuilds the index.
        encoder.model_version = 1
        assert retriever.refresh() is True
        assert stats.index_builds == 2

    def test_scores_change_after_refresh(self, target_docs):
        encoder = _FakeClsEncoder()
        retriever = ClsDenseRetriever(encoder, target_docs, persist=False)
        before = retriever.score_matrix(target_docs[:2])
        encoder.model_version = 7
        retriever.refresh()
        after = retriever.score_matrix(target_docs[:2])
        assert not np.allclose(before, after)

    def test_per_version_persistence(self, target_docs, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        encoder = _FakeClsEncoder()
        stats = RetrievalStats()
        ClsDenseRetriever(encoder, target_docs, cache_token="tok", stats=stats)
        # A second retriever at the same version loads from the store.
        ClsDenseRetriever(encoder, target_docs, cache_token="tok", stats=stats)
        assert stats.index_cache_hits == 1
        assert stats.index_builds == 1
        # A new version gets its own key and must re-encode.
        encoder.model_version = 3
        ClsDenseRetriever(encoder, target_docs, cache_token="tok", stats=stats)
        assert stats.index_builds == 2
