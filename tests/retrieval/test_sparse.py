"""Tests for the BM25 sparse retriever."""

import numpy as np
import pytest

from repro.retrieval import AttributeDoc, SparseRetriever, docs_from_refs
from repro.retrieval.sparse import doc_terms
from repro.schema import AttributeRef


def _doc(entity, name_tokens, description_tokens=(), dtype_family="unknown", is_key=False):
    return AttributeDoc(
        ref=AttributeRef(entity, "_".join(name_tokens)),
        name_tokens=tuple(name_tokens),
        description_tokens=tuple(description_tokens),
        entity_tokens=(entity.lower(),),
        dtype_family=dtype_family,
        is_key=is_key,
    )


@pytest.fixture()
def target_docs(target_schema):
    return docs_from_refs(target_schema, target_schema.attribute_refs())


class TestDocTerms:
    def test_contains_tokens_and_ngrams(self):
        doc = _doc("Orders", ["quantity"])
        terms = doc_terms(doc, ngram_n=3)
        assert terms["quantity"] == 1
        assert "#<qu" in terms
        assert "#ty>" in terms

    def test_description_tokens_have_no_ngrams(self):
        doc = _doc("Orders", ["qty"], ["ordered", "amount"])
        terms = doc_terms(doc, ngram_n=3)
        assert terms["ordered"] == 1
        assert "#<or" not in terms  # n-grams come from name tokens only

    def test_structural_markers(self):
        doc = _doc("Orders", ["id"], dtype_family="numeric", is_key=True)
        terms = doc_terms(doc)
        assert terms["~dtype:numeric"] == 1
        assert terms["~key"] == 1
        unknown = _doc("Orders", ["id"])
        assert "~dtype:unknown" not in doc_terms(unknown)
        assert "~key" not in doc_terms(unknown)


class TestSparseRetriever:
    def test_exact_name_match_ranks_first(self, target_docs):
        retriever = SparseRetriever(target_docs)
        query = _doc("Orders", ["quantity"])
        scores = retriever.score_query(query)
        best = int(np.argmax(scores))
        assert target_docs[best].ref.attribute == "quantity"

    def test_abbreviation_reaches_expansion(self, target_docs):
        """``qty`` shares character n-grams with ``quantity`` via its
        description tokens and trigram overlap -- the signal blocking needs."""
        retriever = SparseRetriever(target_docs)
        query = _doc("Orders", ["qty"], ["quantity", "ordered"])
        scores = retriever.score_query(query)
        ranked = np.argsort(-scores)
        names = [target_docs[int(i)].ref.attribute for i in ranked[:5]]
        assert "quantity" in names

    def test_score_matrix_shape(self, target_docs):
        retriever = SparseRetriever(target_docs)
        queries = [_doc("Orders", ["qty"]), _doc("Orders", ["price"])]
        matrix = retriever.score_matrix(queries)
        assert matrix.shape == (2, len(target_docs))
        assert (matrix >= 0).all()

    def test_no_overlap_scores_zero(self, target_docs):
        retriever = SparseRetriever(target_docs)
        query = _doc("X", ["zzzz"])
        assert retriever.score_query(query).max() == 0.0

    def test_key_marker_links_cryptic_identifiers(self):
        """A key-to-key pair with zero character overlap still scores > 0."""
        docs = [
            _doc("name_basics", ["nconst"], is_key=True),
            _doc("name_basics", ["primary", "name"]),
        ]
        retriever = SparseRetriever(docs)
        query = _doc("users", ["user", "id"], is_key=True)
        scores = retriever.score_query(query)
        assert scores[0] > scores[1]

    def test_refresh_is_noop(self, target_docs):
        retriever = SparseRetriever(target_docs)
        assert retriever.refresh() is False
        assert retriever.model_sensitive is False
