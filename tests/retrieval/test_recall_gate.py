"""The recall@k gate: unit tests plus the public-dataset gate suite.

The gate suite is the tier-1 guard ISSUE asks for: on every public dataset
with ground truth, the fused candidate generator at the default ``GATE_K``
must retain *all* true matches.  A retrieval change that breaks this fails
the build before it can silently cost accuracy downstream.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.eval.retrieval import (
    GATE_DATASETS,
    GATE_K,
    task_minimal_recall_k,
    task_recall_report,
)
from repro.retrieval import (
    CandidateSets,
    RecallGateError,
    candidate_recall,
    enforce_recall_gate,
)
from repro.schema import AttributeRef


def _sets(rows, k):
    return CandidateSets(
        per_source=[np.asarray(row) for row in rows], k=k, retriever_names=("stub",)
    )


SOURCES = [AttributeRef("S", "a"), AttributeRef("S", "b")]
TARGETS = [AttributeRef("T", "x"), AttributeRef("T", "y"), AttributeRef("T", "z")]


class TestCandidateRecall:
    def test_full_recall(self):
        truth = {SOURCES[0]: TARGETS[1], SOURCES[1]: TARGETS[2]}
        report = candidate_recall(_sets([[1, 0], [2, 0]], k=2), truth, SOURCES, TARGETS)
        assert report.recall == 1.0
        assert report.passed

    def test_missed_pair_reported(self):
        truth = {SOURCES[0]: TARGETS[2]}
        report = candidate_recall(_sets([[0, 1], [0, 1]], k=2), truth, SOURCES, TARGETS)
        assert report.recall == 0.0
        assert report.missed == [(SOURCES[0], TARGETS[2])]

    def test_out_of_scope_truth_ignored(self):
        truth = {AttributeRef("S", "elsewhere"): TARGETS[0]}
        report = candidate_recall(_sets([[0], [0]], k=1), truth, SOURCES, TARGETS)
        assert report.num_truth == 0
        assert report.recall == 1.0

    def test_enforce_raises_with_named_pairs(self):
        truth = {SOURCES[0]: TARGETS[2]}
        with pytest.raises(RecallGateError, match="S.a -> T.z"):
            enforce_recall_gate(
                _sets([[0], [0]], k=1), truth, SOURCES, TARGETS, dataset="toy"
            )


class TestPublicDatasetGate:
    """Pruning must retain every true match on every public dataset."""

    @pytest.mark.parametrize("name", GATE_DATASETS)
    def test_recall_at_gate_k_is_total(self, name):
        report = task_recall_report(load_dataset(name), k=GATE_K)
        assert report.passed, (
            f"{name}: recall@{GATE_K} = {report.recall:.3f}, "
            f"missed {report.missed}"
        )

    @pytest.mark.parametrize("name", GATE_DATASETS)
    def test_gate_k_has_margin(self, name):
        """The minimal full-recall k sits below GATE_K with headroom, so the
        gate does not sit on a knife edge."""
        minimal = task_minimal_recall_k(load_dataset(name))
        assert minimal <= GATE_K, (
            f"{name}: minimal full-recall k {minimal} exceeds GATE_K {GATE_K}"
        )
