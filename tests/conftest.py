"""Shared fixtures: small hand-built schemas and tiny trained artefacts.

The heavy per-ISS artefacts (full retail corpus, MiniBERT pre-training) are
exercised by the benchmarks; unit and integration tests run against a tiny
synthetic matching task so the whole suite stays fast.  Session-scoped
fixtures build each artefact once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.artifacts import ArtifactConfig, DomainArtifacts, build_artifacts
from repro.embeddings.ppmi import PpmiConfig
from repro.schema import (
    Attribute,
    AttributeRef,
    DataType,
    Entity,
    Relationship,
    Schema,
    ground_truth_from_pairs,
)


def make_source_schema() -> Schema:
    """A small customer-style source schema (orders + items)."""
    return Schema(
        "tiny_source",
        [
            Entity(
                name="Orders",
                primary_key="order_id",
                attributes=[
                    Attribute("order_id", DataType.INTEGER),
                    Attribute("item_id", DataType.INTEGER),
                    Attribute("qty", DataType.DECIMAL),
                    Attribute("disc", DataType.DECIMAL, "discount applied to the line"),
                    Attribute("order_date", DataType.DATE),
                ],
            ),
            Entity(
                name="Item",
                primary_key="item_id",
                attributes=[
                    Attribute("item_id", DataType.INTEGER),
                    Attribute("item_name", DataType.STRING),
                    Attribute("brand_name", DataType.STRING),
                    Attribute("ean", DataType.STRING, "european article number"),
                ],
            ),
        ],
        [
            Relationship(
                child=AttributeRef("Orders", "item_id"),
                parent=AttributeRef("Item", "item_id"),
            )
        ],
    )


def make_target_schema() -> Schema:
    """A small ISS-style target schema (transactions + products + brands)."""
    return Schema(
        "tiny_target",
        [
            Entity(
                name="Transaction",
                primary_key="transaction_id",
                attributes=[
                    Attribute(
                        "transaction_id",
                        DataType.INTEGER,
                        "the identifier of the transaction record",
                    ),
                    Attribute("product_id", DataType.INTEGER, "the product identifier"),
                    Attribute("quantity", DataType.DECIMAL, "the quantity purchased"),
                    Attribute(
                        "price_change_percentage",
                        DataType.DECIMAL,
                        "the discount percentage applied",
                    ),
                    Attribute(
                        "transaction_date", DataType.DATE, "the date of the transaction"
                    ),
                    Attribute("tax_amount", DataType.DECIMAL, "the tax amount charged"),
                ],
            ),
            Entity(
                name="Product",
                primary_key="product_id",
                attributes=[
                    Attribute("product_id", DataType.INTEGER, "the product identifier"),
                    Attribute("product_name", DataType.STRING, "the name of the product"),
                    Attribute("primary_brand_id", DataType.INTEGER, "the brand identifier"),
                    Attribute(
                        "european_article_number",
                        DataType.STRING,
                        "the european article number barcode",
                    ),
                    Attribute(
                        "product_status_id", DataType.INTEGER, "the product status"
                    ),
                ],
            ),
            Entity(
                name="Brand",
                primary_key="brand_id",
                attributes=[
                    Attribute("brand_id", DataType.INTEGER, "the brand identifier"),
                    Attribute("brand_name", DataType.STRING, "the name of the brand"),
                ],
            ),
        ],
        [
            Relationship(
                child=AttributeRef("Transaction", "product_id"),
                parent=AttributeRef("Product", "product_id"),
            ),
            Relationship(
                child=AttributeRef("Product", "primary_brand_id"),
                parent=AttributeRef("Brand", "brand_id"),
            ),
        ],
    )


def make_ground_truth() -> dict[AttributeRef, AttributeRef]:
    return ground_truth_from_pairs(
        [
            ("Orders.order_id", "Transaction.transaction_id"),
            ("Orders.item_id", "Transaction.product_id"),
            ("Orders.qty", "Transaction.quantity"),
            ("Orders.disc", "Transaction.price_change_percentage"),
            ("Orders.order_date", "Transaction.transaction_date"),
            ("Item.item_id", "Product.product_id"),
            ("Item.item_name", "Product.product_name"),
            ("Item.brand_name", "Brand.brand_name"),
            ("Item.ean", "Product.european_article_number"),
        ]
    )


@pytest.fixture(scope="session")
def source_schema() -> Schema:
    return make_source_schema()


@pytest.fixture(scope="session")
def target_schema() -> Schema:
    return make_target_schema()


@pytest.fixture(scope="session")
def ground_truth() -> dict[AttributeRef, AttributeRef]:
    return make_ground_truth()


def tiny_artifact_config() -> ArtifactConfig:
    return ArtifactConfig(
        vocab_size=400,
        hidden_size=32,
        num_layers=1,
        num_heads=2,
        intermediate_size=64,
        max_position=32,
        mlm_epochs=1,
        mlm_batch_size=16,
        ppmi=PpmiConfig(dim=24),
        seed=0,
    )


@pytest.fixture(scope="session")
def tiny_artifacts(target_schema) -> DomainArtifacts:
    """Small but fully trained artefacts over the tiny target schema."""
    return build_artifacts(
        target_schema, config=tiny_artifact_config(), use_cache=False
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
