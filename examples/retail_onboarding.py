"""Retail customer onboarding: the paper's end-to-end workflow (Section V-C).

Loads the generated Customer A schema and the full 92-entity retail ISS,
then simulates the interactive human-in-the-loop session: review top-3
suggestions, label the least-confident anchor attribute, retrain, repeat
until the full schema is matched.  Prints the labeling-cost curve and the
saving relative to manual labeling (the paper's headline "as much as 81%").

Run:  python examples/retail_onboarding.py
(The first run pre-trains the per-vertical artefacts; they are cached under
 .repro_cache/ so later runs start fast.)
"""

from repro.datasets import load_dataset
from repro.eval.experiments import run_best_baseline_session, run_lsm_session


def main() -> None:
    task = load_dataset("customer_a")
    print(f"Source: {task.source.name} -- {task.source.stats()}")
    print(f"Target: {task.target.name} -- {task.target.stats()}\n")

    print("Running the interactive LSM session (smart selection)...")
    session = run_lsm_session(task, seed=0)
    xs, ys = session.curve()
    print("\n  labels provided -> attributes correctly matched")
    for x, y in zip(xs, ys):
        bar = "#" * int(y / 2.5)
        print(f"  {x:5.1f}%  {y:5.1f}%  {bar}")

    labels_used = session.label_fraction_used
    saving = 100.0 * (1.0 - labels_used)
    print(f"\nFull schema matched with {session.total_labels} labels"
          f" ({labels_used:.0%} of attributes): {saving:.0f}% labeling saved"
          " vs manual labeling.")

    print("\nRunning the best baseline interactively for comparison...")
    name, baseline = run_best_baseline_session(task, seed=0)
    print(f"Best baseline: {name}; labels needed:"
          f" {baseline.total_labels} ({baseline.label_fraction_used:.0%})")
    print(f"LSM advantage: {baseline.total_labels - session.total_labels} fewer labels.")


if __name__ == "__main__":
    main()
