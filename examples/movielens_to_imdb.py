"""Match the MovieLens schema to the IMDb dataset schema (public data).

Reproduces the public-schemata setting of Table IV: compare LSM against all
six baselines on the MovieLens -> IMDb matching task and print the resulting
top-1/3/5 accuracy table.

Run:  python examples/movielens_to_imdb.py
"""

from repro.datasets import load_dataset
from repro.eval.experiments import (
    BASELINE_NAMES,
    evaluate_lsm_accuracy,
    run_baseline,
)
from repro.eval.reporting import render_table


def main() -> None:
    task = load_dataset("movielens_imdb")
    print(f"Source: {task.source.name} -- {task.source.stats()}")
    print(f"Target: {task.target.name} -- {task.target.stats()}")
    print(f"Hand-written ground truth pairs: {len(task.ground_truth)}\n")

    rows = []
    for baseline_name in BASELINE_NAMES:
        result = run_baseline(task, baseline_name)
        rows.append(
            [
                baseline_name,
                f"{result.top_k_accuracy[1]:.2f}",
                f"{result.top_k_accuracy[3]:.2f}",
                f"{result.top_k_accuracy[5]:.2f}",
                result.best_variant,
            ]
        )

    print("Evaluating LSM (50% of the ground truth as training labels)...")
    lsm = evaluate_lsm_accuracy(task, train_fraction=0.5, trials=3)
    rows.append(
        ["lsm", f"{lsm.median(1):.2f}", f"{lsm.median(3):.2f}", f"{lsm.median(5):.2f}", "-"]
    )

    print()
    print(
        render_table(
            ["method", "top-1", "top-3", "top-5", "variant"],
            rows,
            title="MovieLens -> IMDb matching accuracy",
        )
    )
    print("\nExample LSM suggestions with zero labels:")
    from repro.eval.experiments import make_matcher

    matcher = make_matcher(task)
    predictions = matcher.predict()
    for source in list(task.ground_truth)[:5]:
        ranked = predictions.suggestions.get(source, [])
        top = ", ".join(f"{t}:{s:.2f}" for t, s in ranked[:3])
        print(f"  {source} -> {top}")


if __name__ == "__main__":
    main()
