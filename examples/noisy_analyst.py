"""Noise robustness: an analyst who sometimes labels incorrectly (Section V-F).

Simulates the paper's noise model -- with probability ``n``, the user maps a
source attribute to the embedding-nearest *wrong* ISS attribute instead of
the correct one -- and shows that the fraction of correctly matched
attributes plateaus near ``1 - n`` while the workflow still completes.

Run:  python examples/noisy_analyst.py
"""

from repro.datasets import load_dataset
from repro.eval.experiments import run_lsm_session


def main() -> None:
    task = load_dataset("customer_a")
    print(f"Dataset: {task.name} ({task.source.num_attributes} attributes)\n")

    print(f"{'noise rate':>10}  {'labels used':>11}  {'matched':>8}  {'correct':>8}")
    for noise_rate in (0.0, 0.1, 0.2, 0.3):
        session = run_lsm_session(task, seed=0, noise_rate=noise_rate)
        final = session.records[-1]
        correct_pct = 100.0 * final.matched_correct / session.num_source_attributes
        matched_pct = 100.0 * final.matched_total / session.num_source_attributes
        print(
            f"{noise_rate:>10.1f}  {session.total_labels:>11}  "
            f"{matched_pct:>7.0f}%  {correct_pct:>7.0f}%"
        )
    print(
        "\nAs in Fig. 8: everything gets matched, but the correctly-matched"
        "\nfraction is capped by the user's own error rate (~100% - n)."
    )


if __name__ == "__main__":
    main()
