"""Quickstart: match a small customer-style schema to an ISS-style schema.

Builds two schemata by hand, trains the per-vertical artefacts, runs one
non-interactive LSM prediction pass, and prints the top-3 suggestions for
every source attribute.

Run:  python examples/quickstart.py
"""

from repro import (
    Attribute,
    AttributeRef,
    DataType,
    Entity,
    LearnedSchemaMatcher,
    LsmConfig,
    Relationship,
    Schema,
)
from repro.core import ArtifactConfig
from repro.embeddings.ppmi import PpmiConfig
from repro.featurizers.bert import BertFeaturizerConfig


def build_customer_schema() -> Schema:
    """The customer side of Fig. 1 of the paper (abbreviated names)."""
    return Schema(
        "customer",
        [
            Entity(
                name="Item",
                primary_key="item_id",
                attributes=[
                    Attribute("item_id", DataType.INTEGER),
                    Attribute("brand_name", DataType.STRING),
                    Attribute("ean", DataType.STRING),
                    Attribute("enabled", DataType.BOOLEAN),
                ],
            ),
            Entity(
                name="Orders",
                primary_key="order_id",
                attributes=[
                    Attribute("order_id", DataType.INTEGER),
                    Attribute("item_id", DataType.INTEGER),
                    Attribute("item_amount", DataType.DECIMAL),
                    Attribute("discount", DataType.DECIMAL),
                ],
            ),
        ],
        [
            Relationship(
                child=AttributeRef("Orders", "item_id"),
                parent=AttributeRef("Item", "item_id"),
            )
        ],
    )


def build_industry_schema() -> Schema:
    """The ISS side of Fig. 1: verbose, well-documented names."""
    return Schema(
        "retail_iss_fragment",
        [
            Entity(
                name="Product",
                primary_key="product_id",
                attributes=[
                    Attribute("product_id", DataType.INTEGER, "the product identifier"),
                    Attribute("primary_brand_id", DataType.INTEGER, "the brand identifier"),
                    Attribute(
                        "european_article_number",
                        DataType.STRING,
                        "the european article number barcode of the product",
                    ),
                    Attribute("product_status_id", DataType.INTEGER, "the product status"),
                    Attribute(
                        "is_active", DataType.BOOLEAN, "whether the product is active"
                    ),
                ],
            ),
            Entity(
                name="Brand",
                primary_key="brand_id",
                attributes=[
                    Attribute("brand_id", DataType.INTEGER, "the brand identifier"),
                    Attribute("brand_name", DataType.STRING, "the name of the brand"),
                ],
            ),
            Entity(
                name="TransactionLine",
                primary_key="transaction_line_id",
                attributes=[
                    Attribute(
                        "transaction_line_id",
                        DataType.INTEGER,
                        "the identifier of the transaction line",
                    ),
                    Attribute("product_id", DataType.INTEGER, "the product identifier"),
                    Attribute("quantity", DataType.DECIMAL, "the quantity purchased"),
                    Attribute(
                        "price_change_percentage",
                        DataType.DECIMAL,
                        "the discount percentage applied to the line",
                    ),
                    Attribute(
                        "product_item_price_amount",
                        DataType.DECIMAL,
                        "the unit price amount of the product item",
                    ),
                ],
            ),
        ],
        [
            Relationship(
                child=AttributeRef("Product", "primary_brand_id"),
                parent=AttributeRef("Brand", "brand_id"),
            ),
            Relationship(
                child=AttributeRef("TransactionLine", "product_id"),
                parent=AttributeRef("Product", "product_id"),
            ),
        ],
    )


def main() -> None:
    source = build_customer_schema()
    target = build_industry_schema()

    # Small artefacts keep the example fast; drop these overrides for the
    # full-size configuration used in the benchmarks.
    matcher = LearnedSchemaMatcher(
        source,
        target,
        config=LsmConfig(
            bert=BertFeaturizerConfig(max_length=24, pretrain_epochs=2, seed=0)
        ),
        artifact_config=ArtifactConfig(
            vocab_size=500,
            hidden_size=32,
            num_layers=1,
            num_heads=2,
            intermediate_size=64,
            mlm_epochs=1,
            ppmi=PpmiConfig(dim=24),
        ),
    )

    predictions = matcher.predict()
    print(f"Top-3 suggestions for {source.name!r} -> {target.name!r}:\n")
    for ref in source.attribute_refs():
        print(f"  {ref}")
        for target_ref, score in predictions.suggestions.get(ref, []):
            print(f"      {score:5.3f}  {target_ref}")
    print("\nConfidences (least-confident attributes are labeled first):")
    for ref, confidence in sorted(
        predictions.confidences.items(), key=lambda item: item[1]
    ):
        print(f"  {confidence:5.3f}  {ref}")
    print("\nNext attribute LSM would ask the user to label:",
          matcher.select_attributes_to_label()[0])


if __name__ == "__main__":
    main()
