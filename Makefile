PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test parity test-serve-slow test-autotune-slow quant-gate bench-engine bench-engine-quant bench-train bench-serving bench-serve bench-retrieval bench-drift bench-encode trace-smoke

## Tier-1 gate: full test suite, then the engine parity suite explicitly
## (it is part of tests/, the second run pins it even if testpaths change).
verify: test parity

test:
	$(PYTHON) -m pytest -x -q

parity:
	$(PYTHON) -m pytest -q tests/engine/test_parity.py

## Slow serving tests (tier-2): EngineBackend parity across worker counts;
## excluded from `make test` by the `slow` marker.
test-serve-slow:
	$(PYTHON) -m pytest -q tests/serve -m slow

## Engine perf smoke (tier-2): bucketing + int8 rung vs bucketed float32
## with the ranking-space parity gate; emits BENCH_engine.json at the root.
bench-engine:
	$(PYTHON) -m pytest -q benchmarks/test_engine_throughput.py

## Int8-rung bench alone (tier-2): >= 2x over bucketed float32 + parity
## gate; rewrites BENCH_engine.json.
bench-engine-quant:
	$(PYTHON) -m pytest -q benchmarks/test_engine_throughput.py -k int8_rung

## Ranking-space parity gate (tier-2): identical top-1 + AUC within 1e-3
## between float32 and int8 scores on every public ground-truth dataset.
quant-gate:
	$(PYTHON) -m pytest -q tests/eval/test_quant_gate.py

## Slow autotuner sweep (tier-2): measures every candidate strategy per
## shape; excluded from `make test` by the `slow` marker.
test-autotune-slow:
	$(PYTHON) -m pytest -q tests/engine -m slow

## Training perf smoke (tier-2): emits BENCH_train.json at the repo root.
bench-train:
	$(PYTHON) -m pytest -q benchmarks/test_train_throughput.py

## Serving-plane latency smoke (tier-2): post-update time-to-first-score,
## hot-swap vs respawn at 4 workers; emits BENCH_serving.json at the root.
bench-serving:
	REPRO_SKIP_WARM=1 $(PYTHON) -m pytest -q benchmarks/test_serving_latency.py

## Serving-service load replay (tier-2): 240 interleaved requests over 16
## mixed-tenant sessions with hot-swaps, coalesced vs sequential; gates
## parity (1e-8), speedup (>= 2x) and p99 latency; emits BENCH_serve.json.
bench-serve:
	REPRO_SKIP_WARM=1 $(PYTHON) -m pytest -q benchmarks/test_serve_load.py

## Retrieval smoke (tier-2): retrieve-then-rerank vs full product on the
## 10x-scaled ISS (speedup + identical matches + public recall gate);
## emits BENCH_retrieval.json at the root.
bench-retrieval:
	REPRO_SKIP_WARM=1 $(PYTHON) -m pytest -q benchmarks/test_retrieval.py

## Schema-drift smoke (tier-2): 3-column delta on the 10x-scaled ISS;
## gates identical matches vs rebuild, >= 5x fewer BERT re-scores, and
## zero re-runs for drop-only deltas; emits BENCH_drift.json at the root.
bench-drift:
	REPRO_SKIP_WARM=1 $(PYTHON) -m pytest -q benchmarks/test_drift.py

## Encode-plane smoke (tier-2): per-pair encode vs pooled batch assembly
## from cached attribute halves on an encode-dominated 10x-ISS workload;
## gates bit-exact chunk parity and >= 3x speedup; emits BENCH_encode.json.
bench-encode:
	REPRO_SKIP_WARM=1 $(PYTHON) -m pytest -q benchmarks/test_encode.py

## Observability smoke (tier-2): traced session on customer A, NDJSON
## well-formedness + iteration parity + `repro trace summarize` rendering.
trace-smoke:
	REPRO_SKIP_WARM=1 $(PYTHON) -m pytest -q benchmarks/test_trace_smoke.py
